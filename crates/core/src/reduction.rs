//! Built-in reducers for `@Reduce` and a team-wide reduction helper.
//!
//! The paper's annotation style requires thread-local objects to implement
//! a reducer interface "which provides a method to merge two thread local
//! objects into a single object"; the pointcut style lets the concrete
//! aspect supply the merge method. [`Reducer`] implementations here cover
//! the common cases; [`FnReducer`] adapts any closure (the pointcut-style
//! escape hatch).

use crate::ctx;
use crate::region::{parallel_map, RegionConfig};
use crate::threadlocal::Reducer;

/// Sum reduction (`acc += v`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumReducer;

impl<T: std::ops::AddAssign> Reducer<T> for SumReducer {
    fn merge(&self, acc: &mut T, v: T) {
        *acc += v;
    }
}

/// Product reduction (`acc *= v`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProdReducer;

impl<T: std::ops::MulAssign> Reducer<T> for ProdReducer {
    fn merge(&self, acc: &mut T, v: T) {
        *acc *= v;
    }
}

/// Minimum reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinReducer;

impl<T: PartialOrd> Reducer<T> for MinReducer {
    fn merge(&self, acc: &mut T, v: T) {
        if v < *acc {
            *acc = v;
        }
    }
}

/// Maximum reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxReducer;

impl<T: PartialOrd> Reducer<T> for MaxReducer {
    fn merge(&self, acc: &mut T, v: T) {
        if v > *acc {
            *acc = v;
        }
    }
}

/// Element-wise vector sum: merges per-thread accumulation arrays — the
/// reduction the JGF MolDyn thread-local force arrays need.
#[derive(Debug, Clone, Copy, Default)]
pub struct VecSumReducer;

impl<T: std::ops::AddAssign + Copy> Reducer<Vec<T>> for VecSumReducer {
    fn merge(&self, acc: &mut Vec<T>, v: Vec<T>) {
        assert_eq!(
            acc.len(),
            v.len(),
            "VecSumReducer requires equal-length vectors"
        );
        for (a, b) in acc.iter_mut().zip(v) {
            *a += b;
        }
    }
}

/// Adapt a closure into a [`Reducer`] — the pointcut style's
/// application-specific merge method.
#[derive(Debug, Clone, Copy)]
pub struct FnReducer<F>(pub F);

impl<T, F: Fn(&mut T, T)> Reducer<T> for FnReducer<F> {
    fn merge(&self, acc: &mut T, v: T) {
        (self.0)(acc, v);
    }
}

/// Run `body(thread_id)` on a team and reduce the per-thread results with
/// `reducer`, folding into `init`. A convenience combining a parallel
/// region, implicit thread-local results and `@Reduce` in one call.
pub fn parallel_reduce<T, F, R>(cfg: RegionConfig, init: T, reducer: &R, body: F) -> T
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Reducer<T>,
{
    let parts = parallel_map(cfg, body);
    let mut acc = init;
    for p in parts {
        reducer.merge(&mut acc, p);
    }
    acc
}

/// Sequential-order fold of values produced per thread id — used by tests
/// to compare against [`parallel_reduce`].
pub fn sequential_reduce<T, R>(n: usize, init: T, reducer: &R, body: impl Fn(usize) -> T) -> T
where
    R: Reducer<T>,
{
    let mut acc = init;
    for tid in 0..n {
        reducer.merge(&mut acc, body(tid));
    }
    acc
}

/// Current team size — re-exported here for reduction call sites.
pub fn team_size() -> usize {
    ctx::team_size()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reducer_adds() {
        let mut acc = 3;
        SumReducer.merge(&mut acc, 4);
        assert_eq!(acc, 7);
    }

    #[test]
    fn prod_reducer_multiplies() {
        let mut acc = 3.0f64;
        ProdReducer.merge(&mut acc, 4.0);
        assert_eq!(acc, 12.0);
    }

    #[test]
    fn min_max_reducers() {
        let mut lo = 5;
        MinReducer.merge(&mut lo, 2);
        MinReducer.merge(&mut lo, 9);
        assert_eq!(lo, 2);
        let mut hi = 5;
        MaxReducer.merge(&mut hi, 2);
        MaxReducer.merge(&mut hi, 9);
        assert_eq!(hi, 9);
    }

    #[test]
    fn vec_sum_elementwise() {
        let mut acc = vec![1.0, 2.0, 3.0];
        VecSumReducer.merge(&mut acc, vec![10.0, 20.0, 30.0]);
        assert_eq!(acc, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn vec_sum_rejects_mismatched_lengths() {
        let mut acc = vec![1.0];
        VecSumReducer.merge(&mut acc, vec![1.0, 2.0]);
    }

    #[test]
    fn fn_reducer_custom_merge() {
        let r = FnReducer(|acc: &mut String, v: String| {
            acc.push('|');
            acc.push_str(&v);
        });
        let mut acc = "a".to_string();
        r.merge(&mut acc, "b".to_string());
        assert_eq!(acc, "a|b");
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let par = parallel_reduce(RegionConfig::new().threads(4), 0u64, &SumReducer, |tid| {
            (tid as u64 + 1) * 11
        });
        let seq = sequential_reduce(4, 0u64, &SumReducer, |tid| (tid as u64 + 1) * 11);
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_reduce_min() {
        let v = parallel_reduce(
            RegionConfig::new().threads(3),
            i64::MAX,
            &MinReducer,
            |tid| 100 - tid as i64,
        );
        assert_eq!(v, 98);
    }
}
