//! `@ThreadLocalField` and `@Reduce` — per-thread copies of object fields.
//!
//! The paper (§III-C): object fields can be instantiated *per thread* to
//! avoid synchronisation. Each thread-local copy is initialised **with the
//! value of the field outside the thread-local context if the first
//! access is a read**; if the first access is a write the copy is *not*
//! initialised from the global value. `@Reduce` later merges the
//! thread-local copies back into the single global value using a reducer
//! (the annotation style requires the value type to implement the reducer
//! interface; the pointcut style supplies a merge method) — typically when
//! the value is requested outside the thread-local context.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

/// Merges thread-local copies into an accumulated value — the paper's
/// reducer interface.
pub trait Reducer<T> {
    /// Fold `v` into `acc`.
    fn merge(&self, acc: &mut T, v: T);
}

struct LocalCell<T> {
    value: Option<T>,
    /// Creation sequence number, for deterministic reduce order.
    seq: u64,
}

/// A field with one copy per accessing thread (`@ThreadLocalField`).
///
/// Outside any access the field has a *global* value; each thread that
/// touches the field gets a private copy following the paper's
/// initialisation rule, and [`reduce`](Self::reduce) merges the copies
/// back (`@Reduce`).
pub struct ThreadLocalField<T> {
    global: Mutex<T>,
    locals: Mutex<HashMap<ThreadId, Arc<Mutex<LocalCell<T>>>>>,
    next_seq: AtomicU64,
}

impl<T: std::fmt::Debug> std::fmt::Debug for ThreadLocalField<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadLocalField")
            .field("global", &*self.global.lock())
            .field("locals", &self.locals.lock().len())
            .finish()
    }
}

impl<T> ThreadLocalField<T> {
    /// A field whose global value is `v`.
    pub fn new(v: T) -> Self {
        Self {
            global: Mutex::new(v),
            locals: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(0),
        }
    }

    fn cell(&self) -> Arc<Mutex<LocalCell<T>>> {
        let id = std::thread::current().id();
        let mut locals = self.locals.lock();
        if let Some(c) = locals.get(&id) {
            return Arc::clone(c);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let c = Arc::new(Mutex::new(LocalCell { value: None, seq }));
        locals.insert(id, Arc::clone(&c));
        c
    }

    /// Whether the calling thread already owns a local copy.
    pub fn has_local(&self) -> bool {
        let id = std::thread::current().id();
        self.locals
            .lock()
            .get(&id)
            .map(|c| c.lock().value.is_some())
            .unwrap_or(false)
    }

    /// Number of live thread-local copies.
    pub fn local_count(&self) -> usize {
        self.locals
            .lock()
            .values()
            .filter(|c| c.lock().value.is_some())
            .count()
    }

    /// Write the calling thread's copy (`threadLocalFieldWrite` with the
    /// first access being a write: the copy is **not** initialised from
    /// the global value).
    pub fn set(&self, v: T) {
        let cell = self.cell();
        cell.lock().value = Some(v);
    }

    /// Mutate the calling thread's copy, creating it with `init` if this
    /// thread has no copy yet — the first-access-is-a-write rule with an
    /// explicit initial value (e.g. a zeroed accumulator).
    pub fn update_or_init<R>(&self, init: impl FnOnce() -> T, f: impl FnOnce(&mut T) -> R) -> R {
        let cell = self.cell();
        let mut g = cell.lock();
        let slot = g.value.get_or_insert_with(init);
        f(slot)
    }

    /// Replace the global value, returning the old one.
    pub fn replace_global(&self, v: T) -> T {
        std::mem::replace(&mut *self.global.lock(), v)
    }

    /// Read the global value through a closure (no thread-local copy is
    /// consulted or created) — the field "outside the thread local
    /// context".
    pub fn with_global<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.global.lock())
    }

    /// Mutate the global value through a closure.
    pub fn with_global_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.global.lock())
    }

    /// Remove and return all thread-local copies, in creation order.
    pub fn drain_locals(&self) -> Vec<T> {
        let mut locals = self.locals.lock();
        let mut cells: Vec<(u64, T)> = locals
            .drain()
            .filter_map(|(_, c)| {
                let mut g = c.lock();
                let seq = g.seq;
                g.value.take().map(|v| (seq, v))
            })
            .collect();
        cells.sort_by_key(|(seq, _)| *seq);
        cells.into_iter().map(|(_, v)| v).collect()
    }

    /// `@Reduce`: merge every thread-local copy into the global value and
    /// discard the copies. Returns the number of copies merged.
    pub fn reduce(&self, reducer: &impl Reducer<T>) -> usize {
        let copies = self.drain_locals();
        let n = copies.len();
        let mut global = self.global.lock();
        for v in copies {
            reducer.merge(&mut global, v);
        }
        n
    }
}

impl<T: Clone> ThreadLocalField<T> {
    /// Read the calling thread's copy (`threadLocalFieldRead`):
    /// initialised from the global value if this is the thread's first
    /// access — the paper's read-initialisation rule.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let cell = self.cell();
        let mut g = cell.lock();
        if g.value.is_none() {
            g.value = Some(self.global.lock().clone());
        }
        f(g.value.as_ref().expect("just initialised"))
    }

    /// Copy out the calling thread's value (read-initialising if needed).
    pub fn get(&self) -> T {
        self.read(|v| v.clone())
    }

    /// Mutate the calling thread's copy, read-initialising it from the
    /// global value first if absent (a read-modify-write access).
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let cell = self.cell();
        let mut g = cell.lock();
        if g.value.is_none() {
            g.value = Some(self.global.lock().clone());
        }
        f(g.value.as_mut().expect("just initialised"))
    }

    /// Copy of the global value.
    pub fn get_global(&self) -> T {
        self.global.lock().clone()
    }
}

impl<T: Default> Default for ThreadLocalField<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::SumReducer;
    use crate::region::{parallel_with, RegionConfig};

    #[test]
    fn first_read_initialises_from_global() {
        let f = ThreadLocalField::new(10i64);
        assert_eq!(f.get(), 10);
        f.update(|v| *v += 5);
        assert_eq!(f.get(), 15);
        // Global unchanged until reduce.
        assert_eq!(f.get_global(), 10);
    }

    #[test]
    fn first_write_does_not_copy_global() {
        let f = ThreadLocalField::new(10i64);
        f.set(100);
        assert_eq!(f.get(), 100);
        assert_eq!(f.get_global(), 10);
    }

    #[test]
    fn update_or_init_uses_init_not_global() {
        let f = ThreadLocalField::new(999i64);
        f.update_or_init(|| 0, |v| *v += 1);
        f.update_or_init(|| 0, |v| *v += 1);
        assert_eq!(
            f.get(),
            2,
            "second access must reuse the local, not re-init"
        );
    }

    #[test]
    fn each_team_thread_gets_own_copy() {
        let f = ThreadLocalField::new(0i64);
        parallel_with(RegionConfig::new().threads(4), || {
            let tid = crate::ctx::thread_id() as i64;
            f.set(tid + 1);
            assert_eq!(f.get(), tid + 1);
        });
        assert_eq!(f.local_count(), 4);
    }

    #[test]
    fn reduce_merges_all_copies_into_global() {
        let f = ThreadLocalField::new(0i64);
        parallel_with(RegionConfig::new().threads(4), || {
            f.update_or_init(|| 0, |v| *v = crate::ctx::thread_id() as i64 + 1);
        });
        let merged = f.reduce(&SumReducer);
        assert_eq!(merged, 4);
        assert_eq!(f.get_global(), 1 + 2 + 3 + 4);
        assert_eq!(f.local_count(), 0);
    }

    #[test]
    fn reduce_is_repeatable_per_region() {
        let f = ThreadLocalField::new(0i64);
        for _ in 0..3 {
            parallel_with(RegionConfig::new().threads(2), || {
                f.update_or_init(|| 0, |v| *v += 1);
            });
            f.reduce(&SumReducer);
        }
        assert_eq!(f.get_global(), 6);
    }

    #[test]
    fn drain_locals_in_creation_order_is_complete() {
        let f = ThreadLocalField::new(0u64);
        parallel_with(RegionConfig::new().threads(3), || {
            f.set(crate::ctx::thread_id() as u64 * 10);
        });
        let mut vals = f.drain_locals();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 10, 20]);
    }

    #[test]
    fn with_global_mut_edits_global_only() {
        let f = ThreadLocalField::new(vec![1, 2, 3]);
        f.with_global_mut(|v| v.push(4));
        assert_eq!(f.get_global(), vec![1, 2, 3, 4]);
        assert!(!f.has_local());
    }

    #[test]
    fn replace_global_returns_old() {
        let f = ThreadLocalField::new(5i32);
        assert_eq!(f.replace_global(9), 5);
        assert_eq!(f.get_global(), 9);
    }
}
