//! `@Critical` — mutual exclusion with optional shared named locks.
//!
//! The paper (§III-C) extends Java's per-object `synchronized` with locks
//! that can be *shared among multiple type-unrelated objects* and
//! distinguished by an `id` parameter, and notes that `@Critical`'s scope
//! is **all threads in the system** (unlike barriers, which are
//! team-scoped). Two pointcut-style variants exist:
//! `criticalUsingCapturedLock` (one lock per target object) and
//! `criticalUsingSharedLock` (one lock per aspect).
//!
//! The Rust mapping:
//! * [`critical_named`] / [`critical`] — process-wide named locks (the
//!   annotation `id` parameter; the anonymous form uses a single global
//!   default lock, standing in for "the lock of the object where the
//!   annotation is defined" in the absence of an enclosing object).
//! * [`CriticalHandle`] — an owned lock: embed one per object for the
//!   captured-lock variant, or share one handle across call sites for the
//!   shared-lock variant.

use parking_lot::{Mutex, ReentrantMutex, ReentrantMutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::barrier::PARK_TIMEOUT;
use crate::ctx;
use crate::error::WaitSite;
use crate::hook::{self, HookEvent};
use crate::obs;

/// A critical lock paired with a process-unique monotonic id. Hook events
/// key locks by this id, never by address: a dropped-and-reallocated lock
/// must not inherit the happens-before history (vclock release→acquire
/// chains) of whatever previously lived at the same address.
#[derive(Debug)]
pub(crate) struct LockBody {
    mutex: ReentrantMutex<()>,
    id: usize,
}

impl LockBody {
    fn new() -> Self {
        static NEXT_LOCK_ID: AtomicUsize = AtomicUsize::new(1);
        Self {
            mutex: ReentrantMutex::new(()),
            id: NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// Acquire a critical lock. Inside a team this is a *cancellation point*:
/// the wait is chopped into bounded slices so a poisoned or cancelled
/// team unwinds instead of blocking on a lock a dead sibling still
/// holds, and the blocked thread is registered as a
/// [`WaitSite::Critical`] for the stall watchdog.
///
/// Metrics on and metrics off take the same path and emit the identical
/// hook-event sequence (WaitRegister, then CriticalAcquire): the metrics
/// toggle only adds a zero-duration contention probe whose result feeds
/// the `critical_contended` counter, never a separate emit path — so an
/// explored schedule is byte-for-byte identical with metrics toggled.
fn acquire(lock: &LockBody) -> ReentrantMutexGuard<'_, ()> {
    ctx::with_current(|c| match c {
        None => lock.mutex.lock(),
        Some(c) => {
            c.shared.check_interrupt();
            let team = c.shared.token();
            let tid = c.tid;
            let _w = c.shared.begin_wait(tid, WaitSite::Critical);
            // Contention probe: a failed zero-duration try means another
            // thread holds the lock right now. Only with metrics on —
            // the extra try_lock is not free. (Criticals taken outside
            // any team go through the bare `lock()` above and are
            // not counted; `@Critical` contention matters inside teams.)
            let mut got = None;
            if obs::metrics_enabled() {
                got = lock.mutex.try_lock_for(Duration::ZERO);
                if got.is_none() {
                    obs::count(obs::Counter::CriticalContended);
                }
            }
            let g = match got {
                Some(g) => g,
                None => loop {
                    // Under a registered hook, probe without sleeping: the
                    // hook's blocked callback owns the park.
                    let got = if hook::active() {
                        lock.mutex.try_lock_for(Duration::ZERO)
                    } else {
                        lock.mutex.try_lock_for(PARK_TIMEOUT)
                    };
                    if let Some(g) = got {
                        break g;
                    }
                    c.shared.check_interrupt();
                    if !hook::yield_blocked(team, tid, WaitSite::Critical) && hook::active() {
                        // Hook declined the park (e.g. it is letting external
                        // waits drain): bound the probe loop ourselves.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                },
            };
            hook::emit(|| HookEvent::CriticalAcquire {
                team,
                tid,
                lock: lock.id,
            });
            g
        }
    })
}

/// Run `f` holding `lock`, reporting the release to the scheduler hook
/// after the guard drops (so a checker observes the lock actually free).
fn run_locked<R>(lock: &LockBody, f: impl FnOnce() -> R) -> R {
    let g = acquire(lock);
    let r = f();
    drop(g);
    hook::emit_team(|team, tid| HookEvent::CriticalRelease {
        team,
        tid,
        lock: lock.id,
    });
    r
}

/// Registry of process-wide named locks. Entries are never removed: lock
/// names are static program structure (annotation ids), not data.
fn registry() -> &'static Mutex<HashMap<String, Arc<LockBody>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<LockBody>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn named_lock(name: &str) -> Arc<LockBody> {
    let mut reg = registry().lock();
    if let Some(l) = reg.get(name) {
        return Arc::clone(l);
    }
    let l = Arc::new(LockBody::new());
    reg.insert(name.to_owned(), Arc::clone(&l));
    l
}

/// Run `f` in mutual exclusion under the process-wide lock named `id` —
/// `@Critical(id = name)`. Re-entrant: a thread already holding the lock
/// may enter nested criticals with the same id (Java's `synchronized` is
/// re-entrant, and the paper replaces it).
pub fn critical_named<R>(id: &str, f: impl FnOnce() -> R) -> R {
    let lock = named_lock(id);
    run_locked(&lock, f)
}

/// Run `f` under the anonymous default critical lock — a bare
/// `@Critical`. All bare criticals in the process exclude each other, like
/// OpenMP's unnamed `critical`.
pub fn critical<R>(f: impl FnOnce() -> R) -> R {
    critical_named("", f)
}

/// An owned critical lock, for the pointcut-style variants:
/// * *captured lock* — store a `CriticalHandle` in each object; methods of
///   the same object exclude each other but different objects proceed in
///   parallel;
/// * *shared lock* — share one handle (e.g. in an aspect module) across
///   otherwise unrelated call sites.
#[derive(Debug, Clone)]
pub struct CriticalHandle {
    lock: Arc<LockBody>,
}

impl Default for CriticalHandle {
    fn default() -> Self {
        Self {
            lock: Arc::new(LockBody::new()),
        }
    }
}

impl CriticalHandle {
    /// A fresh, unshared lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-unique monotonic id hook events use for this lock.
    /// Never reused, even after the handle is dropped.
    pub fn lock_id(&self) -> usize {
        self.lock.id
    }

    /// Handle to the process-wide named lock `id`; handles with equal ids
    /// exclude each other.
    pub fn named(id: &str) -> Self {
        Self {
            lock: named_lock(id),
        }
    }

    /// Run `f` holding this lock. A cancellation point inside a team (see
    /// [`critical_named`]).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        run_locked(&self.lock, f)
    }

    /// True when both handles guard the same underlying lock.
    pub fn same_lock(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.lock, &other.lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{parallel_with, RegionConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A non-atomic counter only safe to bump inside a critical section.
    struct Unsync(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Unsync {}
    impl Unsync {
        fn bump(&self) {
            // Data race unless callers exclude each other.
            unsafe { *self.0.get() += 1 }
        }
        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }

    #[test]
    fn critical_excludes_concurrent_updates() {
        let counter = Unsync(std::cell::UnsafeCell::new(0));
        parallel_with(RegionConfig::new().threads(4), || {
            for _ in 0..1000 {
                critical_named("test-excl", || counter.bump());
            }
        });
        assert_eq!(counter.get(), 4000);
    }

    #[test]
    fn named_locks_are_shared_by_name() {
        let a = CriticalHandle::named("shared-x");
        let b = CriticalHandle::named("shared-x");
        let c = CriticalHandle::named("shared-y");
        assert!(a.same_lock(&b));
        assert!(!a.same_lock(&c));
    }

    #[test]
    fn fresh_handles_are_independent() {
        let a = CriticalHandle::new();
        let b = CriticalHandle::new();
        assert!(!a.same_lock(&b));
    }

    #[test]
    fn reentrant_same_id() {
        // Java synchronized is re-entrant; @Critical replaces it.
        let v = critical_named("reent", || critical_named("reent", || 42));
        assert_eq!(v, 42);
    }

    #[test]
    fn disjoint_ids_do_not_serialise() {
        // Two disjoint lock sets within one "object" — the paper's
        // composability motivation for lock ids. We only verify they don't
        // deadlock when nested in opposite orders under contention.
        let hits = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            for _ in 0..200 {
                if crate::ctx::thread_id() == 0 {
                    critical_named("ab-a", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    critical_named("ab-b", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                } else {
                    critical_named("ab-b", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    critical_named("ab-a", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn handle_run_returns_value() {
        let h = CriticalHandle::new();
        assert_eq!(h.run(|| "ok"), "ok");
    }

    #[test]
    fn lock_ids_are_monotonic_and_never_reused() {
        // A dropped-and-recreated handle must get a fresh id even when the
        // allocator reuses the address — the id is what hook events key
        // happens-before chains by, so address aliasing would make a new
        // lock inherit the old lock's release history.
        let first = CriticalHandle::new().lock_id();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let h = CriticalHandle::new();
            assert!(seen.insert(h.lock_id()), "id {} reused", h.lock_id());
            assert!(h.lock_id() > first);
            drop(h); // freed slot may be reallocated by the next iteration
        }
    }

    #[test]
    fn named_handles_share_one_id() {
        let a = CriticalHandle::named("id-shared");
        let b = CriticalHandle::named("id-shared");
        assert_eq!(a.lock_id(), b.lock_id());
        assert_ne!(a.lock_id(), CriticalHandle::named("id-other").lock_id());
    }

    #[test]
    fn captured_lock_per_object_pattern() {
        // captured-lock variant: one lock per target object.
        struct Particle {
            lock: CriticalHandle,
            hits: Unsync,
        }
        let particles: Vec<Particle> = (0..4)
            .map(|_| Particle {
                lock: CriticalHandle::new(),
                hits: Unsync(std::cell::UnsafeCell::new(0)),
            })
            .collect();
        parallel_with(RegionConfig::new().threads(4), || {
            for p in &particles {
                for _ in 0..100 {
                    p.lock.run(|| p.hits.bump());
                }
            }
        });
        for p in &particles {
            assert_eq!(p.hits.get(), 400);
        }
    }
}
