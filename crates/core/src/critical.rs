//! `@Critical` — mutual exclusion with optional shared named locks.
//!
//! The paper (§III-C) extends Java's per-object `synchronized` with locks
//! that can be *shared among multiple type-unrelated objects* and
//! distinguished by an `id` parameter, and notes that `@Critical`'s scope
//! is **all threads in the system** (unlike barriers, which are
//! team-scoped). Two pointcut-style variants exist:
//! `criticalUsingCapturedLock` (one lock per target object) and
//! `criticalUsingSharedLock` (one lock per aspect).
//!
//! The Rust mapping:
//! * [`critical_named`] / [`critical`] — process-wide named locks (the
//!   annotation `id` parameter; the anonymous form uses a single global
//!   default lock, standing in for "the lock of the object where the
//!   annotation is defined" in the absence of an enclosing object).
//! * [`CriticalHandle`] — an owned lock: embed one per object for the
//!   captured-lock variant, or share one handle across call sites for the
//!   shared-lock variant.

use parking_lot::{Mutex, ReentrantMutex, ReentrantMutexGuard};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::barrier::PARK_TIMEOUT;
use crate::ctx;
use crate::error::WaitSite;
use crate::hook::{self, HookEvent};
use crate::obs;

/// Acquire a critical lock. Inside a team this is a *cancellation point*:
/// the wait is chopped into bounded slices so a poisoned or cancelled
/// team unwinds instead of blocking on a lock a dead sibling still
/// holds, and the blocked thread is registered as a
/// [`WaitSite::Critical`] for the stall watchdog.
fn acquire(lock: &ReentrantMutex<()>) -> ReentrantMutexGuard<'_, ()> {
    ctx::with_current(|c| match c {
        None => lock.lock(),
        Some(c) => {
            c.shared.check_interrupt();
            let team = c.shared.token();
            let tid = c.tid;
            // Contention probe: a failed zero-duration try means another
            // thread holds the lock right now. Only with metrics on —
            // the extra try_lock is not free. (Criticals taken outside
            // any team go through the bare `lock.lock()` above and are
            // not counted; `@Critical` contention matters inside teams.)
            if obs::metrics_enabled() {
                match lock.try_lock_for(Duration::ZERO) {
                    Some(g) => {
                        hook::emit(|| HookEvent::CriticalAcquire {
                            team,
                            tid,
                            lock: lock as *const _ as usize,
                        });
                        return g;
                    }
                    None => obs::count(obs::Counter::CriticalContended),
                }
            }
            let _w = c.shared.begin_wait(tid, WaitSite::Critical);
            let g = loop {
                // Under a registered hook, probe without sleeping: the
                // hook's blocked callback owns the park.
                let got = if hook::active() {
                    lock.try_lock_for(Duration::ZERO)
                } else {
                    lock.try_lock_for(PARK_TIMEOUT)
                };
                if let Some(g) = got {
                    break g;
                }
                c.shared.check_interrupt();
                if !hook::yield_blocked(team, tid, WaitSite::Critical) && hook::active() {
                    // Hook declined the park (e.g. it is letting external
                    // waits drain): bound the probe loop ourselves.
                    std::thread::sleep(Duration::from_millis(1));
                }
            };
            hook::emit(|| HookEvent::CriticalAcquire {
                team,
                tid,
                lock: lock as *const _ as usize,
            });
            g
        }
    })
}

/// Run `f` holding `lock`, reporting the release to the scheduler hook
/// after the guard drops (so a checker observes the lock actually free).
fn run_locked<R>(lock: &ReentrantMutex<()>, f: impl FnOnce() -> R) -> R {
    let g = acquire(lock);
    let r = f();
    drop(g);
    hook::emit_team(|team, tid| HookEvent::CriticalRelease {
        team,
        tid,
        lock: lock as *const _ as usize,
    });
    r
}

/// Registry of process-wide named locks. Entries are never removed: lock
/// names are static program structure (annotation ids), not data.
fn registry() -> &'static Mutex<HashMap<String, Arc<ReentrantMutex<()>>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<ReentrantMutex<()>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn named_lock(name: &str) -> Arc<ReentrantMutex<()>> {
    let mut reg = registry().lock();
    if let Some(l) = reg.get(name) {
        return Arc::clone(l);
    }
    let l = Arc::new(ReentrantMutex::new(()));
    reg.insert(name.to_owned(), Arc::clone(&l));
    l
}

/// Run `f` in mutual exclusion under the process-wide lock named `id` —
/// `@Critical(id = name)`. Re-entrant: a thread already holding the lock
/// may enter nested criticals with the same id (Java's `synchronized` is
/// re-entrant, and the paper replaces it).
pub fn critical_named<R>(id: &str, f: impl FnOnce() -> R) -> R {
    let lock = named_lock(id);
    run_locked(&lock, f)
}

/// Run `f` under the anonymous default critical lock — a bare
/// `@Critical`. All bare criticals in the process exclude each other, like
/// OpenMP's unnamed `critical`.
pub fn critical<R>(f: impl FnOnce() -> R) -> R {
    critical_named("", f)
}

/// An owned critical lock, for the pointcut-style variants:
/// * *captured lock* — store a `CriticalHandle` in each object; methods of
///   the same object exclude each other but different objects proceed in
///   parallel;
/// * *shared lock* — share one handle (e.g. in an aspect module) across
///   otherwise unrelated call sites.
#[derive(Debug, Clone, Default)]
pub struct CriticalHandle {
    lock: Arc<ReentrantMutex<()>>,
}

impl CriticalHandle {
    /// A fresh, unshared lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the process-wide named lock `id`; handles with equal ids
    /// exclude each other.
    pub fn named(id: &str) -> Self {
        Self {
            lock: named_lock(id),
        }
    }

    /// Run `f` holding this lock. A cancellation point inside a team (see
    /// [`critical_named`]).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        run_locked(&self.lock, f)
    }

    /// True when both handles guard the same underlying lock.
    pub fn same_lock(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.lock, &other.lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{parallel_with, RegionConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A non-atomic counter only safe to bump inside a critical section.
    struct Unsync(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Unsync {}
    impl Unsync {
        fn bump(&self) {
            // Data race unless callers exclude each other.
            unsafe { *self.0.get() += 1 }
        }
        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }

    #[test]
    fn critical_excludes_concurrent_updates() {
        let counter = Unsync(std::cell::UnsafeCell::new(0));
        parallel_with(RegionConfig::new().threads(4), || {
            for _ in 0..1000 {
                critical_named("test-excl", || counter.bump());
            }
        });
        assert_eq!(counter.get(), 4000);
    }

    #[test]
    fn named_locks_are_shared_by_name() {
        let a = CriticalHandle::named("shared-x");
        let b = CriticalHandle::named("shared-x");
        let c = CriticalHandle::named("shared-y");
        assert!(a.same_lock(&b));
        assert!(!a.same_lock(&c));
    }

    #[test]
    fn fresh_handles_are_independent() {
        let a = CriticalHandle::new();
        let b = CriticalHandle::new();
        assert!(!a.same_lock(&b));
    }

    #[test]
    fn reentrant_same_id() {
        // Java synchronized is re-entrant; @Critical replaces it.
        let v = critical_named("reent", || critical_named("reent", || 42));
        assert_eq!(v, 42);
    }

    #[test]
    fn disjoint_ids_do_not_serialise() {
        // Two disjoint lock sets within one "object" — the paper's
        // composability motivation for lock ids. We only verify they don't
        // deadlock when nested in opposite orders under contention.
        let hits = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            for _ in 0..200 {
                if crate::ctx::thread_id() == 0 {
                    critical_named("ab-a", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    critical_named("ab-b", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                } else {
                    critical_named("ab-b", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    critical_named("ab-a", || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn handle_run_returns_value() {
        let h = CriticalHandle::new();
        assert_eq!(h.run(|| "ok"), "ok");
    }

    #[test]
    fn captured_lock_per_object_pattern() {
        // captured-lock variant: one lock per target object.
        struct Particle {
            lock: CriticalHandle,
            hits: Unsync,
        }
        let particles: Vec<Particle> = (0..4)
            .map(|_| Particle {
                lock: CriticalHandle::new(),
                hits: Unsync(std::cell::UnsafeCell::new(0)),
            })
            .collect();
        parallel_with(RegionConfig::new().threads(4), || {
            for p in &particles {
                for _ in 0..100 {
                    p.lock.run(|| p.hits.bump());
                }
            }
        });
        for p in &particles {
            assert_eq!(p.hits.get(), 400);
        }
    }
}
