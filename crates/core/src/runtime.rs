//! Global runtime configuration.
//!
//! Mirrors the OpenMP environment surface the paper relies on: the default
//! team size (`OMP_NUM_THREADS` → `AOMP_NUM_THREADS`) and a process-wide
//! kill switch that forces sequential execution (the paper's "programs can
//! be valid if annotations for parallelisation are ignored").
//!
//! The full `AOMP_*` environment surface (this module's variables plus
//! the observability opt-ins `AOMP_METRICS`/`AOMP_TRACE` handled by
//! [`obs`](crate::obs), the executor's `AOMP_TASK_WORKERS`, the
//! schedule override `AOMP_SCHEDULE`, and the checker's `AOMP_CHECK_*`)
//! is tabulated in the repository README.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable controlling the default team size.
pub const NUM_THREADS_ENV: &str = "AOMP_NUM_THREADS";

/// Environment variable disabling the hot-team cache and the shared task
/// executor (`AOMP_NO_POOL=1`): every region spawns fresh OS threads and
/// every task gets a dedicated thread, as in the unpooled runtime.
pub const NO_POOL_ENV: &str = "AOMP_NO_POOL";

static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);
static PARALLEL_ENABLED: AtomicBool = AtomicBool::new(true);
/// 0 = unset (fall back to the env default), 1 = enabled, 2 = disabled.
static POOL_MODE: AtomicUsize = AtomicUsize::new(0);
/// Default stall deadline in nanoseconds; 0 = no watchdog.
static DEFAULT_STALL_NANOS: AtomicU64 = AtomicU64::new(0);

fn env_default() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        if let Ok(v) = std::env::var(NUM_THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Default number of threads a parallel region uses when neither the
/// region configuration nor an aspect overrides it.
///
/// Resolution order: [`set_default_threads`] > `AOMP_NUM_THREADS` >
/// `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    let v = DEFAULT_THREADS.load(Ordering::Relaxed);
    if v == 0 {
        env_default()
    } else {
        v
    }
}

/// Override the process-wide default team size (like
/// `omp_set_num_threads`). `n` must be at least 1.
pub fn set_default_threads(n: usize) {
    assert!(n >= 1, "default thread count must be >= 1");
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Globally disable or re-enable parallel execution.
///
/// With parallelism disabled every [`region::parallel`](crate::region::parallel)
/// runs its body once on the calling thread — the sequential semantics the
/// paper guarantees when aspects are unplugged. Useful for debugging and
/// for verifying that a parallelisation did not change program results.
pub fn set_parallel_enabled(enabled: bool) {
    PARALLEL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether parallel execution is globally enabled (default: `true`).
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.load(Ordering::Relaxed)
}

fn pool_env_default() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        !std::env::var(NO_POOL_ENV)
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false)
    })
}

/// Whether pooled execution ("hot teams" for regions, the shared executor
/// for tasks) is enabled. Defaults to `true` unless [`NO_POOL_ENV`]
/// (`AOMP_NO_POOL=1`) is set; [`set_pool_enabled`] overrides both.
pub fn pool_enabled() -> bool {
    match POOL_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => pool_env_default(),
    }
}

/// Enable or disable pooled execution at runtime. With pooling disabled
/// every parallel region spawns fresh scoped threads and every task runs
/// on a dedicated thread — the exact pre-pool executors, useful for
/// ablation measurements (see `crates/bench/src/bin/fig13.rs`) and for
/// isolating a suspected pool interaction. Overrides `AOMP_NO_POOL`.
pub fn set_pool_enabled(enabled: bool) {
    POOL_MODE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Arm (or with `None`, disarm) a process-wide default stall deadline.
///
/// Every parallel region whose own configuration does not set
/// [`RegionConfig::stall_deadline`](crate::region::RegionConfig::stall_deadline)
/// inherits this value, so one line converts every region's
/// *synchronisation* stall — members parked at barriers, broadcasts,
/// criticals, task joins or the end-of-region worker join — into a
/// diagnosable [`RegionError::Stalled`](crate::error::RegionError).
/// Per-region settings always win.
///
/// This is not a blanket hang kill switch: the executors behind
/// [`region::parallel`](crate::region::parallel) and
/// [`region::try_parallel`](crate::region::try_parallel) accept
/// borrowing bodies and therefore always join every worker, so a member
/// wedged in non-cooperative user code (an unbounded sleep, a lost
/// external call) still delays its region until it returns. Abandoning
/// such a member requires a body that owns its captures — opt in per
/// call site with
/// [`region::try_parallel_detached`](crate::region::try_parallel_detached).
pub fn set_default_stall_deadline(deadline: Option<Duration>) {
    let nanos = match deadline {
        None => 0,
        Some(d) => {
            assert!(!d.is_zero(), "stall deadline must be non-zero");
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
        }
    };
    DEFAULT_STALL_NANOS.store(nanos, Ordering::Relaxed);
}

/// The process-wide default stall deadline, if one is armed.
pub fn default_stall_deadline() -> Option<Duration> {
    match DEFAULT_STALL_NANOS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(Duration::from_nanos(n)),
    }
}

/// Serialises tests that mutate the process-global stall deadline — a
/// concurrent reset mid-test could disarm another test's watchdog and
/// deadlock it.
#[cfg(test)]
pub(crate) static STALL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn set_default_threads_round_trips() {
        // Note: global state; restore afterwards.
        let before = default_threads();
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        set_default_threads(before.max(1));
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_default_rejected() {
        set_default_threads(0);
    }

    #[test]
    fn stall_deadline_round_trips() {
        let _g = STALL_TEST_LOCK.lock().unwrap();
        set_default_stall_deadline(Some(Duration::from_millis(250)));
        assert_eq!(default_stall_deadline(), Some(Duration::from_millis(250)));
        set_default_stall_deadline(None);
        assert_eq!(default_stall_deadline(), None);
    }

    #[test]
    fn pool_enabled_toggle() {
        // Both executors must be correct regardless of this flag, so a
        // concurrent unit test observing the transient value is fine.
        set_pool_enabled(false);
        assert!(!pool_enabled());
        set_pool_enabled(true);
        assert!(pool_enabled());
    }

    #[test]
    fn parallel_enabled_toggle() {
        assert!(parallel_enabled());
        set_parallel_enabled(false);
        assert!(!parallel_enabled());
        set_parallel_enabled(true);
        assert!(parallel_enabled());
    }
}
