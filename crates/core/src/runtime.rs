//! Runtime instances and the default-runtime configuration surface.
//!
//! Everything that used to be process-global — the default team size,
//! the parallel/pool kill switches, the default stall deadline, the
//! size-keyed hot-team cache and the work-stealing task executor — now
//! lives on an instantiable [`Runtime`] handle. The free functions in
//! this module ([`default_threads`], [`set_parallel_enabled`], …) are
//! thin wrappers over a lazily-initialised *default* runtime, so the
//! OpenMP-style surface the paper relies on (`OMP_NUM_THREADS` →
//! `AOMP_NUM_THREADS`, the process-wide kill switch for "programs can be
//! valid if annotations for parallelisation are ignored") is unchanged
//! for callers that never mention a runtime.
//!
//! ## Instances
//!
//! A [`Runtime`] is a cheap clonable `Arc`-backed handle. Two runtimes
//! share nothing: each owns its defaults, its hot-team cache and its
//! task-executor workers, and its own counter scope — so a per-tenant,
//! per-subsystem or per-test runtime is truly isolated from the rest of
//! the process. Regions and tasks resolve their runtime as:
//!
//! 1. [`RegionConfig::runtime`](crate::region::RegionConfig::runtime)
//!    (or `#[parallel(runtime = ..)]` / the weaver's
//!    `Mechanism::runtime(..)`), else
//! 2. the innermost *entered* runtime on the current thread — entered
//!    explicitly via the [`Runtime::enter`] guard, or implicitly by
//!    being a member of a region that resolved to that runtime (this is
//!    how nested regions and tasks inherit the enclosing runtime instead
//!    of falling back to the default one), else
//! 3. the default runtime.
//!
//! Dropping the last handle to a runtime tears it down: the hot-team
//! cache is closed (idle teams joined) and the executor workers are
//! woken, drained and joined. In-flight regions keep their runtime alive
//! through the master's frame, so teardown can only begin after they
//! return.
//!
//! ## Environment capture
//!
//! `AOMP_NUM_THREADS`, `AOMP_NO_POOL` and `AOMP_TASK_WORKERS` are read
//! exactly once, when the default runtime is constructed, and seed *only
//! the default runtime*. [`Runtime::builder`] ignores the environment
//! entirely — an explicitly built runtime is exactly what its builder
//! says, no matter what the process environment looks like.
//!
//! The full `AOMP_*` environment surface (this module's variables plus
//! the observability opt-ins `AOMP_METRICS`/`AOMP_TRACE` handled by
//! [`obs`](crate::obs), the executor's `AOMP_TASK_WORKERS`, the
//! schedule override `AOMP_SCHEDULE`, and the checker's `AOMP_CHECK_*`)
//! is tabulated in the repository README.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use crate::error::RegionError;
use crate::executor::{self, Executor};
use crate::obs;
use crate::pool::{HotCache, HotLease, HotTeamStats};
use crate::region::RegionConfig;

/// Environment variable controlling the default runtime's team size.
/// Captured once at default-runtime construction; explicitly built
/// runtimes ignore it.
pub const NUM_THREADS_ENV: &str = "AOMP_NUM_THREADS";

/// Environment variable disabling the default runtime's hot-team cache
/// and task executor (`AOMP_NO_POOL=1`): every region spawns fresh OS
/// threads and every task gets a dedicated thread, as in the unpooled
/// runtime. Captured once at default-runtime construction; explicitly
/// built runtimes ignore it.
pub const NO_POOL_ENV: &str = "AOMP_NO_POOL";

struct RuntimeInner {
    /// `set_default_threads` override; 0 = unset (use `base_threads`).
    threads: AtomicUsize,
    /// Team-size default resolved at construction (builder value, or for
    /// the default runtime: env, else `available_parallelism`).
    base_threads: usize,
    parallel: AtomicBool,
    pool: AtomicBool,
    /// Default stall deadline in nanoseconds; 0 = no watchdog.
    stall_nanos: AtomicU64,
    scope: Arc<obs::Scope>,
    cache: Arc<HotCache>,
    executor: Arc<Executor>,
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        // Last handle gone: bounded teardown. Close the cache first
        // (idle teams are parked, their join is prompt), then drain and
        // join the executor workers. A task blocked indefinitely in user
        // code delays this join — same contract as joining any pool.
        self.cache.close();
        self.executor.shutdown_and_join();
    }
}

/// An isolated runtime instance: defaults, kill switches, hot-team
/// cache, task executor and a metrics scope of its own.
///
/// Cheap to clone (an `Arc` handle); equality is identity. Most programs
/// never construct one — the free functions in this module and the
/// region/task entry points all use the lazily-initialised
/// [`default_runtime`]. Construct one with [`Runtime::builder`] when you
/// need isolation: a bounded sub-pool for one subsystem, hermetic tests,
/// or two differently-sized runtimes side by side.
///
/// ```
/// let rt = aomp::Runtime::builder().threads(2).build();
/// rt.parallel(|| {
///     // team of exactly 2, served by `rt`'s private hot-team cache
/// });
/// rt.parallel_with(aomp::region::RegionConfig::new().threads(2), || {});
/// drop(rt); // joins rt's pooled teams and executor workers
/// ```
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl PartialEq for Runtime {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for Runtime {}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.default_threads())
            .field("parallel", &self.parallel_enabled())
            .field("pool", &self.pool_enabled())
            .field("stall_deadline", &self.default_stall_deadline())
            .finish()
    }
}

impl Runtime {
    /// Start building an explicit runtime. The builder ignores every
    /// `AOMP_*` environment variable — those seed the default runtime
    /// only.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Enter this runtime on the current thread: until the returned
    /// guard drops, regions and tasks started from this thread (without
    /// an explicit [`RegionConfig::runtime`]) resolve to `self`. Guards
    /// nest; the innermost wins. The guard is `!Send` — it must drop on
    /// the thread that created it.
    pub fn enter(&self) -> RuntimeGuard {
        ENTERED.with(|s| s.borrow_mut().push(self.clone()));
        RuntimeGuard {
            _not_send: PhantomData,
        }
    }

    /// This runtime's default team size.
    pub fn default_threads(&self) -> usize {
        match self.inner.threads.load(Ordering::Relaxed) {
            0 => self.inner.base_threads,
            n => n,
        }
    }

    /// Override this runtime's default team size (like
    /// `omp_set_num_threads`). `n` must be at least 1.
    pub fn set_default_threads(&self, n: usize) {
        assert!(n >= 1, "default thread count must be >= 1");
        self.inner.threads.store(n, Ordering::Relaxed);
    }

    /// Whether parallel execution is enabled on this runtime.
    pub fn parallel_enabled(&self) -> bool {
        self.inner.parallel.load(Ordering::Relaxed)
    }

    /// Disable or re-enable parallel execution on this runtime. With
    /// parallelism disabled every region resolving to this runtime runs
    /// its body once on the calling thread.
    pub fn set_parallel_enabled(&self, enabled: bool) {
        self.inner.parallel.store(enabled, Ordering::Relaxed);
    }

    /// Whether pooled execution (hot teams for regions, the executor for
    /// tasks) is enabled on this runtime.
    pub fn pool_enabled(&self) -> bool {
        self.inner.pool.load(Ordering::Relaxed)
    }

    /// Enable or disable pooled execution on this runtime. With pooling
    /// disabled every region spawns fresh scoped threads and every task
    /// runs on a dedicated thread — the exact pre-pool executors, useful
    /// for ablation measurements (see `crates/bench/src/bin/fig13.rs`).
    pub fn set_pool_enabled(&self, enabled: bool) {
        self.inner.pool.store(enabled, Ordering::Relaxed);
    }

    /// This runtime's default stall deadline, if one is armed.
    pub fn default_stall_deadline(&self) -> Option<Duration> {
        match self.inner.stall_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Duration::from_nanos(n)),
        }
    }

    /// Arm (or with `None`, disarm) this runtime's default stall
    /// deadline; see [`set_default_stall_deadline`] for semantics and
    /// caveats.
    pub fn set_default_stall_deadline(&self, deadline: Option<Duration>) {
        let nanos = match deadline {
            None => 0,
            Some(d) => {
                assert!(!d.is_zero(), "stall deadline must be non-zero");
                u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
            }
        };
        self.inner.stall_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Execute `body` as a parallel region on this runtime (equivalent
    /// to [`region::parallel`](crate::region::parallel) with
    /// [`RegionConfig::runtime`] set).
    pub fn parallel<F>(&self, body: F)
    where
        F: Fn() + Sync,
    {
        crate::region::parallel_with(RegionConfig::new().runtime(self), body)
    }

    /// Execute a configured parallel region on this runtime; an explicit
    /// `cfg.runtime(..)` naming a different runtime wins over `self`.
    pub fn parallel_with<F>(&self, cfg: RegionConfig, body: F)
    where
        F: Fn() + Sync,
    {
        crate::region::parallel_with(self.apply_to(cfg), body)
    }

    /// Fallible region on this runtime; see
    /// [`region::try_parallel`](crate::region::try_parallel).
    pub fn try_parallel<F>(&self, body: F) -> Result<(), RegionError>
    where
        F: Fn() + Sync,
    {
        crate::region::try_parallel_with(RegionConfig::new().runtime(self), body)
    }

    /// Fallible configured region on this runtime; see
    /// [`region::try_parallel_with`](crate::region::try_parallel_with).
    pub fn try_parallel_with<F>(&self, cfg: RegionConfig, body: F) -> Result<(), RegionError>
    where
        F: Fn() + Sync,
    {
        crate::region::try_parallel_with(self.apply_to(cfg), body)
    }

    /// Spawn a detached task on this runtime's executor; see
    /// [`task::spawn`](crate::task::spawn).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        crate::task::spawn_in(self, f)
    }

    /// Spawn a value-returning task on this runtime's executor; see
    /// [`task::spawn_future`](crate::task::spawn_future).
    pub fn spawn_future<T, F>(&self, f: F) -> crate::task::FutureTask<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        crate::task::spawn_future_in(self, f)
    }

    /// Per-runtime view of the hot-team counters (this runtime's share
    /// of the process-wide [`pool::hot_team_stats`](crate::pool::hot_team_stats)).
    /// All-zero when the runtime was built with `.metrics(false)`.
    pub fn hot_team_stats(&self) -> HotTeamStats {
        crate::pool::stats_from_scope(&self.inner.scope)
    }

    /// Point-in-time copy of this runtime's counter scope. Counters
    /// cover only activity attributed to this runtime; the latency
    /// histograms in the returned snapshot read zero (histograms are
    /// process-global, see [`obs::snapshot`](crate::obs::snapshot)).
    pub fn metrics_snapshot(&self) -> obs::Snapshot {
        self.inner.scope.snapshot()
    }

    /// Attribute one event to this runtime's counter scope (and, when
    /// metrics are armed, to the process-global registry). This is how
    /// layers above the core runtime — per-tenant admission control in
    /// `aomp-serve` — keep per-runtime accounting observably disjoint:
    /// each tenant bumps only its own runtime's scope, so one tenant's
    /// sheds and faults never move a neighbour's counters. No-op on a
    /// runtime built with `.metrics(false)` (scope side; the global
    /// registry still ticks when `AOMP_METRICS` is on).
    pub fn record_counter(&self, c: obs::Counter) {
        obs::counter_inc(c);
        self.inner.scope.bump(c);
    }

    fn apply_to(&self, cfg: RegionConfig) -> RegionConfig {
        if cfg.has_runtime() {
            cfg
        } else {
            cfg.runtime(self)
        }
    }

    pub(crate) fn scope(&self) -> &Arc<obs::Scope> {
        &self.inner.scope
    }

    pub(crate) fn lease(&self, size: usize) -> Option<HotLease> {
        self.inner.cache.lease(size)
    }

    pub(crate) fn downgrade(&self) -> WeakRuntime {
        WeakRuntime(Arc::downgrade(&self.inner))
    }

    /// Run `task` on this runtime: its executor when pooling is enabled
    /// and admission control accepts, else a dedicated thread, else
    /// inline (see [`executor::fallback_dispatch`]).
    pub(crate) fn dispatch_task(&self, name: &'static str, task: executor::Task) {
        obs::count(obs::Counter::TaskSpawned);
        self.inner.scope.bump(obs::Counter::TaskSpawned);
        let task = if self.pool_enabled() {
            match self.inner.executor.try_submit(task) {
                Ok(()) => return,
                Err(t) => t,
            }
        } else {
            obs::count(obs::Counter::TaskRefusedDisabled);
            task
        };
        executor::fallback_dispatch(name, task);
    }
}

/// Weak handle stored inside team state: a region's `TeamShared` must
/// not keep its runtime alive (abandoned detached stragglers would defer
/// teardown indefinitely, and the hot-team job slot would cycle), but
/// member threads need to find the runtime to inherit it for nested
/// regions and tasks.
#[derive(Clone, Default)]
pub(crate) struct WeakRuntime(Weak<RuntimeInner>);

impl WeakRuntime {
    pub(crate) fn upgrade(&self) -> Option<Runtime> {
        self.0.upgrade().map(|inner| Runtime { inner })
    }
}

/// Builder for an explicit [`Runtime`]. Every knob has a fixed default
/// (documented per method); none of them read the environment.
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    threads: Option<usize>,
    parallel: bool,
    pooled: bool,
    task_workers: Option<usize>,
    stall_deadline: Option<Duration>,
    metrics: bool,
}

impl RuntimeBuilder {
    fn new() -> Self {
        Self {
            threads: None,
            parallel: true,
            pooled: true,
            task_workers: None,
            stall_deadline: None,
            metrics: true,
        }
    }

    /// Default team size (default: `available_parallelism`). Must be at
    /// least 1.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "default thread count must be >= 1");
        self.threads = Some(n);
        self
    }

    /// Start with parallel execution enabled or disabled (default:
    /// enabled); toggleable later via [`Runtime::set_parallel_enabled`].
    pub fn parallel(mut self, enabled: bool) -> Self {
        self.parallel = enabled;
        self
    }

    /// Start with pooled execution enabled or disabled (default:
    /// enabled); toggleable later via [`Runtime::set_pool_enabled`].
    pub fn pooled(mut self, enabled: bool) -> Self {
        self.pooled = enabled;
        self
    }

    /// Cap the task-executor worker count (default: the same
    /// `(available_parallelism × 4).clamp(8, 64)` the default runtime
    /// uses when `AOMP_TASK_WORKERS` is unset). Must be at least 1.
    pub fn task_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "task worker cap must be >= 1");
        self.task_workers = Some(n);
        self
    }

    /// Arm a default stall deadline for every region on this runtime
    /// (default: none); see [`set_default_stall_deadline`].
    pub fn stall_deadline(mut self, d: Duration) -> Self {
        assert!(!d.is_zero(), "stall deadline must be non-zero");
        self.stall_deadline = Some(d);
        self
    }

    /// Record per-runtime counters (default: `true`). With `false` the
    /// runtime's scope reads all-zero — including
    /// [`Runtime::hot_team_stats`] — while the process-global registry
    /// still sees its activity.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Construct the runtime: resolves defaults, allocates the counter
    /// scope and the (initially empty) hot-team cache and executor.
    /// Workers are spawned lazily on first use, not here.
    pub fn build(self) -> Runtime {
        let base_threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let workers = self
            .task_workers
            .unwrap_or_else(executor::default_max_workers);
        build_runtime(
            base_threads,
            self.parallel,
            self.pooled,
            workers,
            self.stall_deadline,
            self.metrics,
        )
    }
}

fn build_runtime(
    base_threads: usize,
    parallel: bool,
    pooled: bool,
    task_workers: usize,
    stall_deadline: Option<Duration>,
    metrics: bool,
) -> Runtime {
    let scope = Arc::new(obs::Scope::new(metrics));
    let stall_nanos = match stall_deadline {
        None => 0,
        Some(d) => u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1),
    };
    Runtime {
        inner: Arc::new(RuntimeInner {
            threads: AtomicUsize::new(0),
            base_threads,
            parallel: AtomicBool::new(parallel),
            pool: AtomicBool::new(pooled),
            stall_nanos: AtomicU64::new(stall_nanos),
            cache: HotCache::new(Arc::clone(&scope)),
            executor: Executor::new(task_workers, Arc::clone(&scope)),
            scope,
        }),
    }
}

/// Scope guard returned by [`Runtime::enter`]; pops the entered runtime
/// when dropped. `!Send`: enter/exit must pair on one thread.
pub struct RuntimeGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for RuntimeGuard {
    fn drop(&mut self) {
        ENTERED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

thread_local! {
    /// Stack of entered runtimes on this thread: explicit `enter` guards
    /// interleaved with the implicit entries every region member pushes
    /// for its team's runtime (see `ctx::CtxGuard`). The top is "the
    /// enclosing runtime" for anything started from this thread.
    static ENTERED: RefCell<Vec<Runtime>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn push_entered(rt: Runtime) {
    ENTERED.with(|s| s.borrow_mut().push(rt));
}

pub(crate) fn pop_entered() {
    ENTERED.with(|s| {
        s.borrow_mut().pop();
    });
}

/// The runtime the current thread would use for an unconfigured region
/// or task: innermost entered runtime, else the default runtime.
pub(crate) fn current() -> Runtime {
    if let Some(rt) = ENTERED.with(|s| s.borrow().last().cloned()) {
        return rt;
    }
    default_runtime().clone()
}

// ---------------------------------------------------------------------
// The default runtime and its process-global wrapper surface
// ---------------------------------------------------------------------

/// The process's default runtime, constructed on first use. This is the
/// only constructor that reads the environment: `AOMP_NUM_THREADS` seeds
/// the team size, `AOMP_NO_POOL` the pool switch and `AOMP_TASK_WORKERS`
/// the executor cap, each captured exactly once here. It is never
/// dropped — its workers live for the process.
pub fn default_runtime() -> &'static Runtime {
    static DEFAULT: OnceLock<Runtime> = OnceLock::new();
    DEFAULT.get_or_init(|| {
        let threads = env_usize(NUM_THREADS_ENV).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let pooled = !std::env::var(NO_POOL_ENV)
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false);
        let workers =
            env_usize(executor::TASK_WORKERS_ENV).unwrap_or_else(executor::default_max_workers);
        build_runtime(threads, true, pooled, workers, None, true)
    })
}

fn env_usize(var: &str) -> Option<usize> {
    let v = std::env::var(var).ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Default number of threads a parallel region uses when neither the
/// region configuration nor an aspect overrides it.
///
/// Reads the *default runtime*; resolution order there:
/// [`set_default_threads`] > `AOMP_NUM_THREADS` (captured at
/// default-runtime construction) > `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    default_runtime().default_threads()
}

/// Override the default runtime's team size (like
/// `omp_set_num_threads`). `n` must be at least 1. Explicitly built
/// runtimes are unaffected.
pub fn set_default_threads(n: usize) {
    default_runtime().set_default_threads(n)
}

/// Disable or re-enable parallel execution on the default runtime.
///
/// With parallelism disabled every [`region::parallel`](crate::region::parallel)
/// runs its body once on the calling thread — the sequential semantics the
/// paper guarantees when aspects are unplugged. Useful for debugging and
/// for verifying that a parallelisation did not change program results.
/// Explicitly built runtimes have their own switch
/// ([`Runtime::set_parallel_enabled`]).
pub fn set_parallel_enabled(enabled: bool) {
    default_runtime().set_parallel_enabled(enabled)
}

/// Whether parallel execution is enabled on the default runtime
/// (default: `true`).
pub fn parallel_enabled() -> bool {
    default_runtime().parallel_enabled()
}

/// Whether pooled execution ("hot teams" for regions, the shared executor
/// for tasks) is enabled on the default runtime. Defaults to `true`
/// unless [`NO_POOL_ENV`] (`AOMP_NO_POOL=1`) was set when the default
/// runtime was constructed; [`set_pool_enabled`] overrides both.
pub fn pool_enabled() -> bool {
    default_runtime().pool_enabled()
}

/// Enable or disable pooled execution on the default runtime. With
/// pooling disabled every parallel region spawns fresh scoped threads
/// and every task runs on a dedicated thread — the exact pre-pool
/// executors, useful for ablation measurements (see
/// `crates/bench/src/bin/fig13.rs`) and for isolating a suspected pool
/// interaction. Overrides `AOMP_NO_POOL`.
pub fn set_pool_enabled(enabled: bool) {
    default_runtime().set_pool_enabled(enabled)
}

/// Arm (or with `None`, disarm) the default runtime's default stall
/// deadline.
///
/// Every parallel region whose own configuration does not set
/// [`RegionConfig::stall_deadline`](crate::region::RegionConfig::stall_deadline)
/// (and that resolves to the default runtime) inherits this value, so
/// one line converts every region's *synchronisation* stall — members
/// parked at barriers, broadcasts, criticals, task joins or the
/// end-of-region worker join — into a diagnosable
/// [`RegionError::Stalled`](crate::error::RegionError).
/// Per-region settings always win.
///
/// This is not a blanket hang kill switch: the executors behind
/// [`region::parallel`](crate::region::parallel) and
/// [`region::try_parallel`](crate::region::try_parallel) accept
/// borrowing bodies and therefore always join every worker, so a member
/// wedged in non-cooperative user code (an unbounded sleep, a lost
/// external call) still delays its region until it returns. Abandoning
/// such a member requires a body that owns its captures — opt in per
/// call site with
/// [`region::try_parallel_detached`](crate::region::try_parallel_detached).
pub fn set_default_stall_deadline(deadline: Option<Duration>) {
    default_runtime().set_default_stall_deadline(deadline)
}

/// The default runtime's stall deadline, if one is armed.
pub fn default_stall_deadline() -> Option<Duration> {
    default_runtime().default_stall_deadline()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn set_default_threads_round_trips() {
        // Note: default-runtime state; restore afterwards.
        let before = default_threads();
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        set_default_threads(before.max(1));
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_default_rejected() {
        set_default_threads(0);
    }

    #[test]
    fn stall_deadline_round_trips() {
        // A private runtime: no cross-test serialisation needed (the
        // pre-instance version of this test had to lock a global).
        let rt = Runtime::builder().threads(1).build();
        rt.set_default_stall_deadline(Some(Duration::from_millis(250)));
        assert_eq!(
            rt.default_stall_deadline(),
            Some(Duration::from_millis(250))
        );
        rt.set_default_stall_deadline(None);
        assert_eq!(rt.default_stall_deadline(), None);
    }

    #[test]
    fn pool_enabled_toggle() {
        // Both executors must be correct regardless of this flag, so a
        // concurrent unit test observing the transient value is fine.
        set_pool_enabled(false);
        assert!(!pool_enabled());
        set_pool_enabled(true);
        assert!(pool_enabled());
    }

    #[test]
    fn parallel_enabled_toggle() {
        assert!(parallel_enabled());
        set_parallel_enabled(false);
        assert!(!parallel_enabled());
        set_parallel_enabled(true);
        assert!(parallel_enabled());
    }

    #[test]
    fn builder_knobs_round_trip() {
        let rt = Runtime::builder()
            .threads(3)
            .parallel(true)
            .pooled(false)
            .task_workers(2)
            .stall_deadline(Duration::from_secs(5))
            .metrics(false)
            .build();
        assert_eq!(rt.default_threads(), 3);
        assert!(rt.parallel_enabled());
        assert!(!rt.pool_enabled());
        assert_eq!(rt.default_stall_deadline(), Some(Duration::from_secs(5)));
        // metrics(false): the scope reads zero even after activity.
        rt.parallel(|| {});
        assert_eq!(rt.hot_team_stats(), HotTeamStats::default());
    }

    #[test]
    fn enter_guard_nests_and_pops() {
        let a = Runtime::builder().threads(1).build();
        let b = Runtime::builder().threads(2).build();
        {
            let _ga = a.enter();
            assert_eq!(current(), a);
            {
                let _gb = b.enter();
                assert_eq!(current(), b);
            }
            assert_eq!(current(), a);
        }
        assert_eq!(&current(), default_runtime());
    }

    #[test]
    fn runtime_equality_is_identity() {
        let a = Runtime::builder().threads(1).build();
        let b = Runtime::builder().threads(1).build();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
