//! The `@For` work-sharing construct and `@Ordered` sections.
//!
//! A *for method* exposes its loop bounds as the first three integer
//! parameters `(start, end, step)` (paper §III-A). A [`ForConstruct`]
//! intercepts the call on every team thread and rewrites the range
//! according to its [`Schedule`]:
//!
//! * static block — paper Figure 10: call once with this thread's block;
//! * static cyclic — call once with `(start + tid*step, end, step*n)`;
//! * dynamic / guided — paper Figure 11: repeatedly pull chunks from a
//!   shared dispenser and call the body per chunk, then meet at a team
//!   barrier (Figure 11's trailing `// call barrier`).
//!
//! Outside a parallel region the body runs once with the original range —
//! sequential semantics.
//!
//! Construct state (dispenser cursors, ordered turns) is keyed by team,
//! not stored on a [`Runtime`](crate::Runtime): a `ForConstruct` works
//! unchanged inside regions of any runtime instance, including two
//! instances work-sharing through distinct constructs concurrently.
//!
//! Every chunk handout is a *cancellation point*: after a
//! [`cancel_team`](crate::ctx::cancel_team) (or a watchdog force-cancel)
//! the dispensers stop handing out iterations and the thread skips to the
//! end of the region. Handouts also count as progress for the stall
//! watchdog, so a long chunked loop is never mistaken for a stall.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};

use crate::ctx::{self, fresh_key};
use crate::error::WaitSite;
use crate::hook::{self, HookEvent};
use crate::obs;
use crate::range::LoopRange;
use crate::schedule::{self, Schedule};

const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// Shared dispenser for [`Schedule::Dynamic`]: the paper Figure 11
/// `getTask()` counter.
#[derive(Default)]
struct DynState {
    next: AtomicU64,
}

/// Shared dispenser for [`Schedule::Guided`].
#[derive(Default)]
struct GuidedState {
    remaining: Mutex<Option<u64>>,
}

impl GuidedState {
    /// Take the next chunk as logical iterations `[lo, hi)`.
    fn take(&self, count: u64, n: usize, min_chunk: u64) -> Option<(u64, u64)> {
        let mut g = self.remaining.lock();
        let rem = g.get_or_insert(count);
        if *rem == 0 {
            return None;
        }
        let c = schedule::guided_chunk(*rem, n, min_chunk);
        let lo = count - *rem;
        *rem -= c;
        Some((lo, lo + c))
    }
}

/// Shared dispenser for [`Schedule::Adaptive`], built on first touch by
/// whichever member arrives first (every member computes the same seed).
#[derive(Default)]
struct AdaptiveState {
    shared: std::sync::OnceLock<AdaptiveShared>,
}

/// The adaptive dispenser proper: per-thread remaining ranges seeded
/// exactly like static block, plus the latency signal that drives
/// refinement.
///
/// Ownership protocol: slot `i` is *installed into* only by thread `i`
/// (its static seed, then ranges it steals); thieves only ever shrink a
/// slot. A non-empty slot therefore always has its owner draining it,
/// which is what makes exiting after one fruitless victim scan
/// work-conserving — no spinning on a global remaining count.
struct AdaptiveShared {
    /// Remaining logical iterations `[lo, hi)` per home slot.
    ranges: Vec<Mutex<(u64, u64)>>,
    /// Per-thread EWMA of observed ns per iteration (f64 bits; 0 means
    /// no sample yet). Heuristic only: relaxed loads/stores, lost
    /// updates are acceptable.
    ewma: Vec<AtomicU64>,
    /// Team-wide EWMA of ns per iteration (f64 bits), the baseline a
    /// thread compares itself against to decide it is hot.
    team: AtomicU64,
}

impl AdaptiveShared {
    fn seed(count: u64, n: usize) -> Self {
        AdaptiveShared {
            ranges: (0..n)
                .map(|i| Mutex::new(schedule::static_block_iters(count, i, n)))
                .collect(),
            ewma: (0..n).map(|_| AtomicU64::new(0)).collect(),
            team: AtomicU64::new(0),
        }
    }

    /// Fold one observed chunk latency into the thread's and the team's
    /// per-iteration EWMAs. The per-thread constant is aggressive (the
    /// signal is the whole point); the team baseline moves slowly so one
    /// expensive chunk does not mark everyone cold.
    fn note(&self, tid: usize, ns_per_iter: f64) {
        let own = f64::from_bits(self.ewma[tid].load(AtomicOrdering::Relaxed));
        let next = if own == 0.0 {
            ns_per_iter
        } else {
            own + 0.4 * (ns_per_iter - own)
        };
        self.ewma[tid].store(next.to_bits(), AtomicOrdering::Relaxed);
        let team = f64::from_bits(self.team.load(AtomicOrdering::Relaxed));
        let next_team = if team == 0.0 {
            ns_per_iter
        } else {
            team + 0.1 * (ns_per_iter - team)
        };
        self.team
            .store(next_team.to_bits(), AtomicOrdering::Relaxed);
    }

    /// Whether `tid`'s iterations are observably more expensive than the
    /// team baseline (so its remaining range should refine into smaller
    /// chunks, leaving more behind for thieves).
    fn is_hot(&self, tid: usize) -> bool {
        let own = f64::from_bits(self.ewma[tid].load(AtomicOrdering::Relaxed));
        let team = f64::from_bits(self.team.load(AtomicOrdering::Relaxed));
        team > 0.0 && own > schedule::adaptive_hot_factor() * team
    }

    /// Dispense the next chunk from the front of `slot`'s range: half of
    /// what remains while cold (so a uniform loop costs only
    /// ~log2(block/min_chunk) handouts — near static block), an eighth
    /// while hot (fine grain where the latency signal says it matters).
    fn take(&self, slot: usize, hot: bool, min_chunk: u64) -> Option<(u64, u64)> {
        let mut g = self.ranges[slot].lock();
        let (lo, hi) = *g;
        if lo >= hi {
            return None;
        }
        let rem = hi - lo;
        // max-then-min, not `clamp`: the tail can leave `rem < min_chunk`.
        let c = (rem / if hot { 8 } else { 2 }).max(min_chunk).min(rem);
        g.0 = lo + c;
        Some((lo, lo + c))
    }

    /// Cut the upper half `[mid, hi)` off `victim`'s remaining range
    /// (the victim keeps `[lo, mid)` — its front, which it is already
    /// walking). Ranges too small to split are left to their owner.
    fn steal_half(&self, victim: usize, min_chunk: u64) -> Option<(u64, u64)> {
        let mut g = self.ranges[victim].lock();
        let (lo, hi) = *g;
        if hi.saturating_sub(lo) < 2 * min_chunk {
            return None;
        }
        let mid = lo + (hi - lo) / 2;
        g.1 = mid;
        Some((mid, hi))
    }

    /// Install a stolen range as `slot`'s own. Only `slot`'s owner calls
    /// this, and only after draining its previous range.
    fn install(&self, slot: usize, range: (u64, u64)) {
        let mut g = self.ranges[slot].lock();
        debug_assert!(g.0 >= g.1, "installing over a non-empty own range");
        *g = range;
    }
}

/// Shared sequencing state for ordered sections.
#[derive(Default)]
struct OrderedState {
    next: Mutex<u64>,
    cv: Condvar,
}

impl OrderedState {
    /// Block until it is `ticket`'s turn. `check` runs before the wait
    /// and on every park tick; it aborts by unwinding (poison/cancel).
    /// `park` (the scheduler hook's blocked callback) is offered each
    /// would-be park first; both run with the sequencer unlocked so they
    /// may block or unwind freely.
    fn enter(&self, ticket: u64, check: impl Fn(), park: impl Fn() -> bool) {
        loop {
            {
                let next = self.next.lock();
                if *next == ticket {
                    return;
                }
            }
            check();
            if !park() {
                let mut next = self.next.lock();
                if *next != ticket {
                    self.cv.wait_for(&mut next, PARK_TIMEOUT);
                }
            }
        }
    }

    fn exit(&self, ticket: u64) {
        let mut next = self.next.lock();
        debug_assert_eq!(*next, ticket);
        *next = ticket + 1;
        drop(next);
        self.cv.notify_all();
    }
}

/// A `@For` work-sharing construct bound to one for method.
///
/// Create one handle per annotated for method (the attribute macro and the
/// library aspects do this for you) and call [`execute`](Self::execute) in
/// place of the original loop body invocation.
#[derive(Debug)]
pub struct ForConstruct {
    key: u64,
    schedule: Schedule,
    nowait: bool,
}

impl ForConstruct {
    /// A for construct with the given schedule. Dynamic and guided
    /// schedules end with a team barrier (paper Figure 11) unless
    /// [`nowait`](Self::nowait) is set; static schedules do not barrier —
    /// the paper's LUFact adds explicit `@BarrierAfter` where needed.
    pub fn new(schedule: Schedule) -> Self {
        Self {
            key: fresh_key(),
            schedule,
            nowait: false,
        }
    }

    /// Suppress the trailing team barrier of dynamic/guided schedules.
    pub fn nowait(mut self) -> Self {
        self.nowait = true;
        self
    }

    /// The schedule this construct applies.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Run the for method body over `range`, split across the team.
    ///
    /// `body(lo, hi, step)` must iterate exactly
    /// `for (i = lo; step > 0 ? i < hi : i > hi; i += step)` — i.e. treat
    /// its three arguments exactly as the original sequential loop did.
    /// The body may be invoked multiple times (chunked schedules).
    pub fn execute<F>(&self, range: LoopRange, mut body: F)
    where
        F: FnMut(i64, i64, i64),
    {
        self.execute_scoped(range, |r, _scope| body(r.start, r.end, r.step));
    }

    /// Like [`execute`](Self::execute) but the body also receives a
    /// [`ForScope`] giving access to ordered sections and the logical
    /// iteration numbering. Used by `@Ordered` (only supported within the
    /// calling context of a for method, per paper §III-C).
    pub fn execute_scoped<F>(&self, range: LoopRange, mut body: F)
    where
        F: FnMut(LoopRange, &ForScope<'_>),
    {
        ctx::with_current(|c| match c {
            None => {
                let scope = ForScope {
                    full: range,
                    shared: None,
                };
                body(range, &scope);
            }
            Some(c) => {
                let n = c.shared.n;
                let tid = c.tid;
                if n == 1 {
                    let round = c.next_round(self.key);
                    let ordered = c.shared.slot::<OrderedState>(self.key, round);
                    let scope = ForScope {
                        full: range,
                        shared: Some(ScopeShared {
                            team: c,
                            ordered: &ordered,
                        }),
                    };
                    body(range, &scope);
                    c.shared.detach_slot(self.key, round);
                    return;
                }
                let round = c.next_round(self.key);
                let count = range.count();
                // Ordered sequencing state is shared by every schedule.
                let ordered = c.shared.slot::<OrderedState>(self.key, round);
                let scope_shared = ScopeShared {
                    team: c,
                    ordered: &ordered,
                };

                match self.schedule {
                    Schedule::StaticBlock => {
                        c.shared.check_interrupt();
                        // Compute the block in iteration space so the
                        // handout event reports logical iteration numbers
                        // (it used to leak element values here, one of
                        // the two coordinate systems the five arms mixed).
                        let (ilo, ihi) = schedule::static_block_iters(count, tid, n);
                        let sub = range.slice_iters(ilo, ihi);
                        let scope = ForScope {
                            full: range,
                            shared: Some(scope_shared),
                        };
                        if !sub.is_empty() {
                            hook::emit(|| HookEvent::ChunkHandout {
                                team: c.shared.token(),
                                tid,
                                kind: "static-block",
                                lo: ilo,
                                hi: ihi,
                            });
                            body(sub, &scope);
                        }
                    }
                    Schedule::StaticCyclic => {
                        c.shared.check_interrupt();
                        let sub = schedule::static_cyclic_range(range, tid, n);
                        let scope = ForScope {
                            full: range,
                            shared: Some(scope_shared),
                        };
                        if !sub.is_empty() {
                            // The cyclic assignment {tid, tid+n, ...} is
                            // non-contiguous in iteration space, so a
                            // single [lo, hi) cannot describe it: with a
                            // hook registered, emit one single-iteration
                            // handout per assigned iteration (cyclic ==
                            // block-cyclic with chunk 1). Metrics/trace
                            // instead take one O(1) probe per assignment —
                            // an O(count) event loop must not run just
                            // because AOMP_METRICS is set.
                            let first = tid as u64;
                            if hook::active() {
                                let mut k = first;
                                while k < count {
                                    hook::emit(|| HookEvent::ChunkHandout {
                                        team: c.shared.token(),
                                        tid,
                                        kind: "static-cyclic",
                                        lo: k,
                                        hi: k + 1,
                                    });
                                    k += n as u64;
                                }
                            }
                            let iters = (count - first).div_ceil(n as u64);
                            obs::chunk_cyclic(first, iters);
                            body(sub, &scope);
                        }
                    }
                    Schedule::Dynamic { chunk } => {
                        let chunk = chunk.max(1);
                        let dyn_state = c.shared.slot::<DynState>(self.key ^ DYN_KEY_SALT, round);
                        let scope = ForScope {
                            full: range,
                            shared: Some(scope_shared),
                        };
                        // Chunk coalescing: grab a *batch* of consecutive
                        // chunks per shared-counter fetch so fine-grained
                        // loops (small `chunk`, large `count`) don't
                        // hammer one cache line once per chunk. Sized so
                        // every thread still makes ~8 trips to the
                        // dispenser — enough batches left for load
                        // balancing, the property dynamic scheduling is
                        // for. Each chunk inside a batch remains its own
                        // handout: a cancellation point, a progress bump
                        // and a `ChunkHandout` hook event, so
                        // cancellation latency and checker-visible
                        // granularity are unchanged.
                        let chunks_total = count.div_ceil(chunk);
                        let coalesce = (chunks_total / (8 * n as u64)).clamp(1, 16);
                        let batch = chunk * coalesce;
                        loop {
                            // Cancellation point: stop requesting batches
                            // once the team is poisoned/cancelled.
                            c.shared.check_interrupt();
                            let lo = dyn_state.next.fetch_add(batch, AtomicOrdering::Relaxed);
                            if lo >= count {
                                break;
                            }
                            let batch_hi = (lo + batch).min(count);
                            let mut cl = lo;
                            while cl < batch_hi {
                                c.shared.check_interrupt();
                                c.shared.bump_progress();
                                let hi = (cl + chunk).min(batch_hi);
                                hook::emit(|| HookEvent::ChunkHandout {
                                    team: c.shared.token(),
                                    tid,
                                    kind: "dynamic",
                                    lo: cl,
                                    hi,
                                });
                                body(range.slice_iters(cl, hi), &scope);
                                cl = hi;
                            }
                        }
                        c.shared.detach_slot(self.key ^ DYN_KEY_SALT, round);
                        if !self.nowait {
                            c.shared.team_barrier(tid);
                        }
                    }
                    Schedule::BlockCyclic { chunk } => {
                        let chunk = chunk.max(1);
                        let scope = ForScope {
                            full: range,
                            shared: Some(scope_shared),
                        };
                        for (lo, hi) in schedule::block_cyclic_iters(count, chunk, tid, n) {
                            c.shared.check_interrupt();
                            c.shared.bump_progress();
                            hook::emit(|| HookEvent::ChunkHandout {
                                team: c.shared.token(),
                                tid,
                                kind: "block-cyclic",
                                lo,
                                hi,
                            });
                            body(range.slice_iters(lo, hi), &scope);
                        }
                    }
                    Schedule::Guided { min_chunk } => {
                        let gstate = c.shared.slot::<GuidedState>(self.key ^ DYN_KEY_SALT, round);
                        let scope = ForScope {
                            full: range,
                            shared: Some(scope_shared),
                        };
                        loop {
                            c.shared.check_interrupt();
                            let Some((lo, hi)) = gstate.take(count, n, min_chunk.max(1)) else {
                                break;
                            };
                            c.shared.bump_progress();
                            hook::emit(|| HookEvent::ChunkHandout {
                                team: c.shared.token(),
                                tid,
                                kind: "guided",
                                lo,
                                hi,
                            });
                            body(range.slice_iters(lo, hi), &scope);
                        }
                        c.shared.detach_slot(self.key ^ DYN_KEY_SALT, round);
                        if !self.nowait {
                            c.shared.team_barrier(tid);
                        }
                    }
                    Schedule::Adaptive { min_chunk } => {
                        let min_chunk = min_chunk.max(1);
                        let astate = c
                            .shared
                            .slot::<AdaptiveState>(self.key ^ DYN_KEY_SALT, round);
                        let sh = astate.shared.get_or_init(|| AdaptiveShared::seed(count, n));
                        let scope = ForScope {
                            full: range,
                            shared: Some(scope_shared),
                        };
                        // Under the checker, skip wall-clock sampling
                        // entirely: every thread stays cold, so the
                        // handout stream is a pure function of the
                        // explored interleaving and traces replay
                        // byte-for-byte. Stealing still happens (ranges
                        // drain in schedule-dependent order), so the
                        // oracle exercises the interesting paths.
                        let measure = !hook::active();
                        let order = schedule::steal_order(tid, n, schedule::configured_sockets());
                        'dispense: loop {
                            // Drain the own range, refining chunk size
                            // from the latency signal.
                            loop {
                                c.shared.check_interrupt();
                                let hot = measure && sh.is_hot(tid);
                                let Some((lo, hi)) = sh.take(tid, hot, min_chunk) else {
                                    break;
                                };
                                c.shared.bump_progress();
                                hook::emit(|| HookEvent::ChunkHandout {
                                    team: c.shared.token(),
                                    tid,
                                    kind: "adaptive",
                                    lo,
                                    hi,
                                });
                                let t0 = measure.then(Instant::now);
                                body(range.slice_iters(lo, hi), &scope);
                                if let Some(t0) = t0 {
                                    let dur = t0.elapsed();
                                    sh.note(tid, dur.as_nanos() as f64 / (hi - lo) as f64);
                                    obs::record_lat(obs::Lat::ChunkBody, dur);
                                }
                            }
                            // Own range dry: adopt the back half of the
                            // nearest victim with enough left to split
                            // (same-socket ring first, then remote).
                            for &v in &order {
                                if let Some(r) = sh.steal_half(v, min_chunk) {
                                    obs::count(obs::Counter::ChunkAdaptiveSteals);
                                    sh.install(tid, r);
                                    continue 'dispense;
                                }
                            }
                            // A full scan found nothing splittable; what
                            // little remains is drained by its owners.
                            break;
                        }
                        c.shared.detach_slot(self.key ^ DYN_KEY_SALT, round);
                        if !self.nowait {
                            c.shared.team_barrier(tid);
                        }
                    }
                }
                c.shared.detach_slot(self.key, round);
            }
        });
    }
}

impl Default for ForConstruct {
    fn default() -> Self {
        Self::new(Schedule::StaticBlock)
    }
}

/// Salt distinguishing the dispenser slot from the ordered slot of the
/// same construct occurrence.
const DYN_KEY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

struct ScopeShared<'a> {
    team: &'a std::rc::Rc<crate::ctx::TeamCtx>,
    ordered: &'a OrderedState,
}

/// Per-encounter handle passed to [`ForConstruct::execute_scoped`]
/// bodies: ordered sections and iteration bookkeeping.
pub struct ForScope<'a> {
    full: LoopRange,
    shared: Option<ScopeShared<'a>>,
}

impl ForScope<'_> {
    /// The complete (unsplit) iteration range of this for encounter.
    pub fn full_range(&self) -> LoopRange {
        self.full
    }

    /// Logical iteration number (0-based, in sequential order) of loop
    /// element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an element of the loop (not reachable from
    /// `start` by whole steps). This check is unconditional: in a release
    /// build a silently wrong ordered ticket would deadlock the team,
    /// while the panic is team-safe (poisoning cancels the region).
    pub fn iteration_of(&self, i: i64) -> u64 {
        let off = i - self.full.start;
        assert!(
            off % self.full.step == 0 && off / self.full.step >= 0,
            "element {i} is not on the loop grid start={} step={} \
             (ordered()/iteration_of need an actual loop element)",
            self.full.start,
            self.full.step,
        );
        (off / self.full.step) as u64
    }

    /// Execute `f` as an `@Ordered` section for loop element `i`:
    /// sections run in sequential iteration order across the whole team.
    /// Every iteration of the loop must execute exactly one ordered
    /// section (OpenMP's rule, which the paper inherits).
    pub fn ordered<R>(&self, i: i64, f: impl FnOnce() -> R) -> R {
        let ticket = self.iteration_of(i);
        match &self.shared {
            None => f(),
            Some(s) => {
                let team = s.team.shared.token();
                let tid = s.team.tid;
                {
                    let _w = s.team.shared.begin_wait(tid, WaitSite::Ordered);
                    s.ordered.enter(
                        ticket,
                        || s.team.shared.check_interrupt(),
                        || hook::yield_blocked(team, tid, WaitSite::Ordered),
                    );
                }
                hook::emit(|| HookEvent::OrderedEnter { team, tid, ticket });
                let r = f();
                s.ordered.exit(ticket);
                hook::emit(|| HookEvent::OrderedExit { team, tid, ticket });
                r
            }
        }
    }
}

/// A standalone ordered sequencer: closures run in ascending ticket order
/// `0, 1, 2, …` regardless of which thread submits them. The `@Ordered`
/// support for code outside for methods.
#[derive(Debug, Default)]
pub struct Ordered {
    state: OrderedState,
}

impl std::fmt::Debug for OrderedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedState")
            .field("next", &*self.next.lock())
            .finish()
    }
}

impl Ordered {
    /// New sequencer expecting tickets from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until all tickets below `ticket` have completed, run `f`,
    /// then release `ticket + 1`. A cancellation point when called inside
    /// a team.
    pub fn run<R>(&self, ticket: u64, f: impl FnOnce() -> R) -> R {
        ctx::with_current(|c| match c {
            None => self.state.enter(ticket, || {}, || false),
            Some(c) => {
                let team = c.shared.token();
                let tid = c.tid;
                let _w = c.shared.begin_wait(tid, WaitSite::Ordered);
                self.state.enter(
                    ticket,
                    || c.shared.check_interrupt(),
                    || hook::yield_blocked(team, tid, WaitSite::Ordered),
                );
            }
        });
        hook::emit_team(|team, tid| HookEvent::OrderedEnter { team, tid, ticket });
        let r = f();
        self.state.exit(ticket);
        hook::emit_team(|team, tid| HookEvent::OrderedExit { team, tid, ticket });
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{parallel_with, RegionConfig};
    use parking_lot::Mutex as PlMutex;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn run_for(schedule: Schedule, threads: usize, range: LoopRange) -> Vec<i64> {
        let seen = PlMutex::new(Vec::new());
        let for_c = ForConstruct::new(schedule);
        parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(range, |lo, hi, step| {
                let mut local = Vec::new();
                for i in LoopRange::new(lo, hi, step).iter() {
                    local.push(i);
                }
                seen.lock().extend(local);
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        v
    }

    fn expect(range: LoopRange) -> Vec<i64> {
        let mut v: Vec<i64> = range.iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn static_block_covers_range() {
        let r = LoopRange::new(0, 101, 1);
        assert_eq!(run_for(Schedule::StaticBlock, 4, r), expect(r));
    }

    #[test]
    fn static_cyclic_covers_range() {
        let r = LoopRange::new(3, 50, 2);
        assert_eq!(run_for(Schedule::StaticCyclic, 3, r), expect(r));
    }

    #[test]
    fn dynamic_covers_range() {
        let r = LoopRange::new(0, 57, 1);
        assert_eq!(run_for(Schedule::Dynamic { chunk: 4 }, 4, r), expect(r));
    }

    #[test]
    fn guided_covers_range() {
        let r = LoopRange::new(0, 230, 1);
        assert_eq!(run_for(Schedule::GUIDED, 4, r), expect(r));
    }

    #[test]
    fn empty_range_runs_nothing() {
        for s in [
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::DYNAMIC,
            Schedule::ADAPTIVE,
        ] {
            assert!(run_for(s, 3, LoopRange::new(5, 5, 1)).is_empty());
        }
    }

    #[test]
    fn adaptive_covers_range() {
        let r = LoopRange::new(0, 173, 1);
        assert_eq!(
            run_for(Schedule::Adaptive { min_chunk: 4 }, 4, r),
            expect(r)
        );
    }

    #[test]
    fn adaptive_covers_negative_step_and_repeats() {
        let r = LoopRange::new(40, -1, -3);
        assert_eq!(run_for(Schedule::ADAPTIVE, 3, r), expect(r));
        // Fresh dispenser per encounter, like the other chunked arms.
        let for_c = ForConstruct::new(Schedule::Adaptive { min_chunk: 2 });
        let sum = AtomicI64::new(0);
        parallel_with(RegionConfig::new().threads(3), || {
            for _pass in 0..5 {
                for_c.execute(LoopRange::upto(0, 20), |lo, hi, step| {
                    let mut s = 0;
                    for i in LoopRange::new(lo, hi, step).iter() {
                        s += i;
                    }
                    sum.fetch_add(s, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 5 * (0..20).sum::<i64>());
    }

    #[test]
    fn adaptive_skewed_work_still_partitions_exactly_once() {
        // Heavy tail on low iterations forces hot-thread refinement and
        // steals on a real clock; the covers-exactly-once contract must
        // hold regardless of what the adapter decides.
        let r = LoopRange::upto(0, 400);
        let seen = PlMutex::new(Vec::new());
        let for_c = ForConstruct::new(Schedule::Adaptive { min_chunk: 1 });
        parallel_with(RegionConfig::new().threads(4), || {
            for_c.execute(r, |lo, hi, step| {
                let mut local = Vec::new();
                for i in LoopRange::new(lo, hi, step).iter() {
                    if i < 40 {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    local.push(i);
                }
                seen.lock().extend(local);
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, expect(r));
    }

    #[test]
    fn ordered_with_adaptive_schedule() {
        let for_c = ForConstruct::new(Schedule::Adaptive { min_chunk: 1 });
        let log = PlMutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(3), || {
            for_c.execute_scoped(LoopRange::upto(0, 24), |sub, scope| {
                for i in sub.iter() {
                    scope.ordered(i, || log.lock().push(i));
                }
            });
        });
        assert_eq!(log.into_inner(), (0..24).collect::<Vec<i64>>());
    }

    #[test]
    fn negative_step_covers_range() {
        let r = LoopRange::new(40, -1, -3);
        assert_eq!(run_for(Schedule::StaticBlock, 3, r), expect(r));
        assert_eq!(run_for(Schedule::StaticCyclic, 3, r), expect(r));
        assert_eq!(run_for(Schedule::Dynamic { chunk: 2 }, 3, r), expect(r));
    }

    #[test]
    fn sequential_fallback_runs_once_with_full_range() {
        let for_c = ForConstruct::new(Schedule::DYNAMIC);
        let calls = AtomicI64::new(0);
        for_c.execute(LoopRange::upto(0, 10), |lo, hi, step| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!((lo, hi, step), (0, 10, 1));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn repeated_encounters_get_fresh_dispensers() {
        // A for method called in a loop inside one region (the LUFact
        // pattern: dgefa calls reduceAllCols once per column).
        let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 2 });
        let sum = AtomicI64::new(0);
        parallel_with(RegionConfig::new().threads(3), || {
            for _pass in 0..5 {
                for_c.execute(LoopRange::upto(0, 20), |lo, hi, step| {
                    let mut s = 0;
                    for i in LoopRange::new(lo, hi, step).iter() {
                        s += i;
                    }
                    sum.fetch_add(s, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 5 * (0..20).sum::<i64>());
    }

    #[test]
    fn ordered_sections_run_in_iteration_order() {
        let for_c = ForConstruct::new(Schedule::StaticCyclic);
        let log = PlMutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(4), || {
            for_c.execute_scoped(LoopRange::upto(0, 32), |sub, scope| {
                for i in sub.iter() {
                    scope.ordered(i, || log.lock().push(i));
                }
            });
        });
        assert_eq!(log.into_inner(), (0..32).collect::<Vec<i64>>());
    }

    #[test]
    fn ordered_with_dynamic_schedule() {
        let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 3 });
        let log = PlMutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(3), || {
            for_c.execute_scoped(LoopRange::upto(0, 20), |sub, scope| {
                for i in sub.iter() {
                    scope.ordered(i, || log.lock().push(i));
                }
            });
        });
        assert_eq!(log.into_inner(), (0..20).collect::<Vec<i64>>());
    }

    #[test]
    fn standalone_ordered_sequences_tickets() {
        let ord = Ordered::new();
        let log = PlMutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(4), || {
            let t = crate::ctx::thread_id() as u64;
            // Submit in reverse thread order to stress the sequencing.
            ord.run(t, || log.lock().push(t));
        });
        assert_eq!(log.into_inner(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_iteration_of_maps_elements() {
        let for_c = ForConstruct::new(Schedule::StaticBlock);
        for_c.execute_scoped(LoopRange::new(10, 30, 5), |_sub, scope| {
            assert_eq!(scope.iteration_of(10), 0);
            assert_eq!(scope.iteration_of(25), 3);
            assert_eq!(scope.full_range(), LoopRange::new(10, 30, 5));
        });
    }
}
