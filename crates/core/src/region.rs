//! Parallel regions — the main source of parallelism (paper §III-A).
//!
//! A parallel region is the context of a method execution: when the master
//! thread enters the region a team of threads is created, every thread
//! executes the region body, and all of them implicitly synchronise when
//! the body ends (paper Figure 9). This module is the runtime that the
//! `ParallelRegion` aspect (crate `aomp-weaver`) and the `#[parallel]`
//! annotation (crate `aomp-macros`) both dispatch into.
//!
//! Top-level multi-thread regions are served by **hot teams** by
//! default: parked workers leased from the resolved
//! [`Runtime`](crate::runtime::Runtime)'s size-keyed cache
//! (see [`pool`](crate::pool)) instead of `n − 1` fresh OS threads per
//! region. A region resolves its runtime as [`RegionConfig::runtime`] >
//! the innermost entered runtime on the calling thread (which is how a
//! nested region inherits its parent's) > the default runtime.
//! Nested regions, `AOMP_NO_POOL=1` /
//! [`runtime::set_pool_enabled(false)`](crate::runtime::set_pool_enabled),
//! [`RegionConfig::pooled(false)`] and [`try_parallel_detached`] use the
//! spawn executor. Pooled or spawned, the member protocol — context
//! guards, hook events, cancellation points, watchdog wait sites, panic
//! classification — is identical.
//!
//! # Failure semantics
//!
//! Three API surfaces over two executors:
//!
//! * [`parallel`] / [`parallel_with`] — the classic panicking API: a team
//!   thread's panic poisons the team (unblocking siblings) and is
//!   re-raised on the caller; cancellation is a benign early exit; a
//!   watchdog-declared stall panics with the diagnosis.
//! * [`try_parallel`] / [`try_parallel_with`] — the fallible API:
//!   returns [`RegionError::Panicked`], [`RegionError::Cancelled`] or
//!   [`RegionError::Stalled`] instead.
//! * [`try_parallel_detached`] — the fallible API over the *owning*
//!   executor: the body must be `Send + Sync + 'static`, workers run
//!   detached, and on a watchdog-declared stall members wedged in
//!   non-cooperative user code are abandoned so the caller is released.
//!
//! The first two accept borrowing bodies (`F: Fn() + Sync`) and therefore
//! always run on scoped threads with a full join: releasing the caller
//! while a worker still borrows its frame would be a use-after-free, so
//! their watchdog is *cooperative* — it can wake and cancel members
//! parked in library primitives, but a member wedged in user code delays
//! the region until it returns. [`try_parallel_detached`] trades the
//! borrowing ergonomics for liveness: ownership (`Arc`-shared region
//! frame), not lifetime erasure, is what makes its abandonment sound.
//!
//! Cancellation follows OpenMP 4.0's `cancel parallel` model: opt in with
//! [`RegionConfig::cancellable`], request with
//! [`cancel_team`](crate::ctx::cancel_team), observe at every
//! cancellation point (barriers, chunk handouts, critical entry,
//! broadcasts, task joins, explicit
//! [`cancellation_point`](crate::ctx::cancellation_point)).
//!
//! [`RegionConfig::stall_deadline`] arms a watchdog thread that
//! force-cancels the team when it stops making progress while members sit
//! blocked in synchronisation primitives — converting a deadlock or a
//! hung worker into a diagnosable [`RegionError::Stalled`] naming each
//! blocked thread's wait site.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::ctx::{self, CtxGuard, TeamShared};
use crate::error::{self, Cancelled, RegionError, TeamPoisoned, WaitSite};
use crate::hook::{self, HookEvent};
use crate::obs;
use crate::runtime;

/// Configuration of a parallel region — the Rust analogue of
/// `@Parallel(threads = n)` / overriding `numThreads()` in a concrete
/// aspect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionConfig {
    threads: Option<usize>,
    /// Allow creating a nested team when already inside a region.
    /// Defaults to `true` (the library supports nested parallel regions,
    /// paper §III-D); disable to serialise inner regions like OpenMP with
    /// `OMP_NESTED=false`.
    nested: Option<bool>,
    /// OpenMP `if` clause: when `false` the region runs with one thread.
    only_if: Option<bool>,
    /// Opt-in for [`cancel_team`](crate::ctx::cancel_team) (OpenMP 4.0
    /// requires cancellation to be activated).
    cancellable: Option<bool>,
    /// Arm the stall watchdog with this deadline.
    stall_deadline: Option<Duration>,
    /// Allow (default) or refuse the hot-team cache for this region.
    pooled: Option<bool>,
    /// Pin the region to a specific runtime instance.
    runtime: Option<runtime::Runtime>,
}

impl RegionConfig {
    /// A region using the runtime default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the team size explicitly (`@Parallel(threads = n)`).
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "a parallel region needs at least one thread");
        self.threads = Some(n);
        self
    }

    /// Control whether a region encountered inside another region creates
    /// a real nested team (`true`, default) or runs with a team of one.
    pub fn nested(mut self, nested: bool) -> Self {
        self.nested = Some(nested);
        self
    }

    /// OpenMP's `if` clause: parallelise only when `cond` is true —
    /// typically a problem-size threshold (small inputs are not worth a
    /// team spawn).
    pub fn only_if(mut self, cond: bool) -> Self {
        self.only_if = Some(cond);
        self
    }

    /// Allow [`cancel_team`](crate::ctx::cancel_team) to cancel this
    /// team (OpenMP 4.0's `cancel` must be activated; default `false`).
    /// The stall watchdog cancels regardless of this flag.
    pub fn cancellable(mut self, on: bool) -> Self {
        self.cancellable = Some(on);
        self
    }

    /// Arm a stall watchdog: if the team makes no progress (no chunk
    /// handouts, no wait-site transitions) for `deadline` while at least
    /// one member is blocked in a team synchronisation primitive — the
    /// master's end-of-region worker join counts as one
    /// ([`WaitSite::Join`]) — the team is force-cancelled and the region
    /// reports [`RegionError::Stalled`] with each blocked thread's wait
    /// site.
    ///
    /// Choose a deadline longer than the region's longest
    /// synchronisation-free compute phase: the watchdog cannot
    /// distinguish a slow chunk from a hung one.
    ///
    /// Under [`parallel_with`] / [`try_parallel_with`] the watchdog is
    /// *cooperative*: the region still joins every worker, so a member
    /// wedged in non-cooperative user code delays the return (see the
    /// module docs). Use [`try_parallel_detached`] when such members
    /// must be abandoned to release the caller.
    pub fn stall_deadline(mut self, deadline: Duration) -> Self {
        assert!(!deadline.is_zero(), "stall deadline must be non-zero");
        self.stall_deadline = Some(deadline);
        self
    }

    /// Optional form of [`stall_deadline`](Self::stall_deadline) for
    /// callers threading a computed time budget — `None` leaves the
    /// config unchanged (the runtime default, if any, still applies).
    /// This is the deadline-propagation hook used by request-serving
    /// layers: a request's remaining budget flows here so a wedged
    /// region times out as
    /// [`RegionError::Stalled`](crate::error::RegionError) instead of
    /// occupying its workers past the deadline.
    pub fn stall_deadline_opt(self, deadline: Option<Duration>) -> Self {
        match deadline {
            Some(d) => self.stall_deadline(d),
            None => self,
        }
    }

    /// Allow (`true`, the default) or refuse (`false`) serving this
    /// region from the runtime's hot-team cache. With pooling refused the
    /// region always spawns fresh scoped threads — the per-region
    /// counterpart of the process-wide
    /// [`runtime::set_pool_enabled`](crate::runtime::set_pool_enabled) /
    /// `AOMP_NO_POOL=1` opt-out. Semantics are identical either way; the
    /// switch exists for ablation measurements and for bodies that want
    /// guaranteed-fresh OS threads (e.g. ones mutating thread-level
    /// state such as signal masks or priorities).
    pub fn pooled(mut self, pooled: bool) -> Self {
        self.pooled = Some(pooled);
        self
    }

    /// Pin this region to a specific [`Runtime`](crate::runtime::Runtime)
    /// instance: its defaults (team size, kill switches, stall deadline),
    /// its hot-team cache and its counter scope serve the region,
    /// regardless of which runtime the calling thread has entered.
    /// Unset, the region uses the innermost entered runtime (the
    /// enclosing region's, inside one) or the default runtime.
    pub fn runtime(mut self, rt: &runtime::Runtime) -> Self {
        self.runtime = Some(rt.clone());
        self
    }

    pub(crate) fn has_runtime(&self) -> bool {
        self.runtime.is_some()
    }

    pub(crate) fn resolve_runtime(&self) -> runtime::Runtime {
        self.runtime.clone().unwrap_or_else(runtime::current)
    }

    fn resolve_threads(&self, rt: &runtime::Runtime) -> usize {
        let n = self.threads.unwrap_or_else(|| rt.default_threads());
        if !rt.parallel_enabled() || self.only_if == Some(false) {
            return 1;
        }
        if ctx::level() > 0 && !self.nested.unwrap_or(true) {
            return 1;
        }
        n
    }

    fn effective_stall_deadline(&self, rt: &runtime::Runtime) -> Option<Duration> {
        self.stall_deadline.or_else(|| rt.default_stall_deadline())
    }
}

/// Execute `body` as a parallel region with the default configuration.
///
/// Every thread of the new team runs `body` once; the call returns after
/// all of them finished (the implicit join of paper Figure 9). Inside the
/// body, [`ctx::thread_id`] yields the team-relative id.
///
/// If any team thread panics the team is poisoned (siblings blocked in
/// team synchronisation unwind with
/// [`TeamPoisoned`](crate::error::TeamPoisoned)) and the panic propagates
/// to the caller. Cancellation is treated as a successful early exit; use
/// [`try_parallel`] to observe it.
pub fn parallel<F>(body: F)
where
    F: Fn() + Sync,
{
    parallel_with(RegionConfig::default(), body)
}

/// Execute `body` as a parallel region with an explicit [`RegionConfig`].
/// See [`parallel`] for the panic/cancel semantics.
pub fn parallel_with<F>(cfg: RegionConfig, body: F)
where
    F: Fn() + Sync,
{
    match run_region(cfg, body) {
        RawOutcome::Completed | RawOutcome::Cancelled => {}
        RawOutcome::Stalled(blocked) => {
            panic!("{}", RegionError::Stalled { blocked })
        }
        RawOutcome::Panicked(payload) => resume_unwind(payload),
    }
}

/// Fallible variant of [`parallel`]: reports team panics, cancellation
/// and watchdog-declared stalls as a [`RegionError`] instead of
/// panicking.
pub fn try_parallel<F>(body: F) -> Result<(), RegionError>
where
    F: Fn() + Sync,
{
    try_parallel_with(RegionConfig::default(), body)
}

/// Fallible variant of [`parallel_with`].
///
/// Returns `Err(RegionError::Panicked)` if any member panicked (first
/// payload wins, summarised as a message), `Err(RegionError::Cancelled)`
/// after a [`cancel_team`](crate::ctx::cancel_team), and
/// `Err(RegionError::Stalled)` when the watchdog armed by
/// [`RegionConfig::stall_deadline`] declared the region stuck.
///
/// # Stall semantics
///
/// The body may capture by reference, so the region runs on scoped
/// threads and **always joins every worker** before returning — no
/// member is ever left holding a borrow of a freed frame. A stall
/// declared by the watchdog force-cancels the team: members parked in
/// library primitives (barriers, broadcasts, criticals, task joins)
/// wake, unwind and are joined promptly, and the region returns
/// `Stalled` naming their wait sites. A member wedged in
/// *non-cooperative user code* (an unbounded sleep, a lost external
/// call) cannot be woken; the join — and therefore the `Stalled`
/// return — waits until it comes back. When such members must be
/// abandoned to release the caller, use [`try_parallel_detached`],
/// whose `'static` body makes abandonment sound.
pub fn try_parallel_with<F>(cfg: RegionConfig, body: F) -> Result<(), RegionError>
where
    F: Fn() + Sync,
{
    match run_region(cfg, body) {
        RawOutcome::Completed => Ok(()),
        RawOutcome::Cancelled => Err(RegionError::Cancelled),
        RawOutcome::Stalled(blocked) => Err(RegionError::Stalled { blocked }),
        RawOutcome::Panicked(payload) => Err(RegionError::Panicked {
            payload_msg: error::payload_msg(payload.as_ref()),
        }),
    }
}

/// Fallible parallel region over the *owning* executor: workers run
/// detached (plain OS threads, not scoped), so a member wedged in
/// non-cooperative user code cannot hold the caller hostage.
///
/// The price is the `Send + Sync + 'static` bound: the body must own its
/// captures (`Arc`, atomics, moved values — no borrows of the caller's
/// frame). Body, panic slot and completion latch live in one
/// `Arc`-shared region frame that every worker co-owns.
///
/// On a watchdog-declared stall ([`RegionConfig::stall_deadline`] or the
/// [process-wide default](crate::runtime::set_default_stall_deadline)),
/// members parked in library primitives are woken, unwound and joined;
/// a member that never reaches a cancellation point is **abandoned**
/// after a short grace period (`min(deadline, 100 ms)`) and the call
/// returns [`RegionError::Stalled`]. Abandonment is memory-safe: the
/// straggler's `Arc` keeps the region frame alive, so even if it later
/// resumes it only touches live, owned state, observes the force-cancel
/// at its next cancellation point and exits. Until then it occupies an
/// OS thread and whatever the body captured — effectively leaked for as
/// long as it stays wedged.
///
/// Without a stall deadline this behaves like [`try_parallel_with`]
/// (full join), just with owned instead of borrowed captures.
pub fn try_parallel_detached<F>(cfg: RegionConfig, body: F) -> Result<(), RegionError>
where
    F: Fn() + Send + Sync + 'static,
{
    match run_region_detached(cfg, body) {
        RawOutcome::Completed => Ok(()),
        RawOutcome::Cancelled => Err(RegionError::Cancelled),
        RawOutcome::Stalled(blocked) => Err(RegionError::Stalled { blocked }),
        RawOutcome::Panicked(payload) => Err(RegionError::Panicked {
            payload_msg: error::payload_msg(payload.as_ref()),
        }),
    }
}

/// Execute `body` on a team and collect each thread's return value,
/// indexed by thread id. A convenience not present in OpenMP but natural
/// in Rust; used by tests and by reductions.
pub fn parallel_map<F, T>(cfg: RegionConfig, body: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let n = cfg.resolve_threads(&cfg.resolve_runtime());
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    {
        let results = &results;
        let body = &body;
        parallel_with(cfg, move || {
            let tid = ctx::thread_id();
            let v = body(tid);
            *results[tid].lock() = Some(v);
        });
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every team thread stores a result"))
        .collect()
}

// ---------------------------------------------------------------------
// Executor internals
// ---------------------------------------------------------------------

enum RawOutcome {
    Completed,
    Cancelled,
    Stalled(Vec<(usize, WaitSite)>),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// First *real* panic payload of the team (benign `Cancelled` /
/// `TeamPoisoned` unwinds are filtered out by [`record_member_exit`]).
/// `pub(crate)` because the hot-team executor (`pool`) runs the same
/// member exit protocol.
pub(crate) type PayloadSlot = Mutex<Option<Box<dyn std::any::Any + Send>>>;

/// Classify one member's exit. Benign unwinds (`Cancelled` echoes of an
/// actual team cancel, `TeamPoisoned` echoes of a sibling's panic) are
/// absorbed; a real panic poisons the team and its payload is kept
/// (first wins).
pub(crate) fn record_member_exit(
    shared: &TeamShared,
    payload: &PayloadSlot,
    r: Result<(), Box<dyn std::any::Any + Send>>,
) {
    let Err(p) = r else { return };
    if p.downcast_ref::<TeamPoisoned>().is_some() {
        return;
    }
    if p.downcast_ref::<Cancelled>().is_some() && shared.cancelled.load(Ordering::Acquire) {
        // A genuine cancellation echo: the member unwound from a
        // cancellation point after the team's cancel flag was set. A
        // stray `Cancelled` payload raised by user code on a team that
        // was never cancelled falls through and is treated as a real
        // panic — it must not impersonate a cancel the team never
        // opted into.
        return;
    }
    shared.poison();
    let mut slot = payload.lock();
    if slot.is_none() {
        *slot = Some(p);
    }
}

fn classify(shared: &TeamShared, payload: &PayloadSlot) -> RawOutcome {
    if let Some(p) = payload.lock().take() {
        return RawOutcome::Panicked(p);
    }
    if let Some(blocked) = shared.take_stalled() {
        return RawOutcome::Stalled(blocked);
    }
    if shared.cancelled.load(Ordering::Acquire) {
        return RawOutcome::Cancelled;
    }
    RawOutcome::Completed
}

fn new_team(cfg: &RegionConfig, rt: &runtime::Runtime, n: usize, watched: bool) -> Arc<TeamShared> {
    Arc::new(TeamShared::for_runtime(
        n,
        ctx::level() + 1,
        cfg.cancellable.unwrap_or(false),
        watched,
        rt.downgrade(),
    ))
}

fn run_region<F>(cfg: RegionConfig, body: F) -> RawOutcome
where
    F: Fn() + Sync,
{
    // The master's `rt` binding keeps the runtime alive for the region's
    // duration — the team itself only holds a weak handle.
    let rt = cfg.resolve_runtime();
    let n = cfg.resolve_threads(&rt);
    let deadline = cfg.effective_stall_deadline(&rt);
    let shared = new_team(&cfg, &rt, n, deadline.is_some());
    let payload: PayloadSlot = Mutex::new(None);

    hook::emit(|| HookEvent::RegionStart {
        team: shared.token(),
        size: n,
        level: shared.level,
    });
    // Region round-trip histogram (entry + body + join): with an empty
    // body this is exactly fig13's entry overhead, keyed by executor.
    let t0 = obs::region_timer();
    if n == 1 {
        obs::count(obs::Counter::RegionInline);
        rt.scope().bump(obs::Counter::RegionInline);
        inline_region(&shared, &payload, &body, deadline);
        obs::region_done(t0, obs::Lat::RegionInline);
    } else if let Some(lease) = hot_lease(&cfg, &rt, n) {
        crate::pool::note_pooled_region(rt.scope());
        hot_region(lease.team(), deadline, &shared, &payload, &body);
        obs::region_done(t0, obs::Lat::RegionPooled);
    } else {
        crate::pool::note_spawned_region(rt.scope());
        scoped_region(n, deadline, &shared, &payload, &body);
        obs::region_done(t0, obs::Lat::RegionSpawned);
    }
    let outcome = classify(&shared, &payload);
    hook::emit(|| HookEvent::RegionEnd {
        team: shared.token(),
    });
    outcome
}

fn run_region_detached<F>(cfg: RegionConfig, body: F) -> RawOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let rt = cfg.resolve_runtime();
    let n = cfg.resolve_threads(&rt);
    let deadline = cfg.effective_stall_deadline(&rt);
    let shared = new_team(&cfg, &rt, n, deadline.is_some());

    hook::emit(|| HookEvent::RegionStart {
        team: shared.token(),
        size: n,
        level: shared.level,
    });
    let t0 = obs::region_timer();
    let outcome = if n == 1 {
        let payload: PayloadSlot = Mutex::new(None);
        obs::count(obs::Counter::RegionInline);
        rt.scope().bump(obs::Counter::RegionInline);
        inline_region(&shared, &payload, &body, deadline);
        obs::region_done(t0, obs::Lat::RegionInline);
        classify(&shared, &payload)
    } else {
        // Never pooled: abandonment on the stall path needs threads the
        // runtime can afford to leak, so fresh detached ones are spawned.
        crate::pool::note_spawned_region(rt.scope());
        let o = detached_region(n, deadline, &shared, body);
        obs::region_done(t0, obs::Lat::RegionSpawned);
        o
    };
    hook::emit(|| HookEvent::RegionEnd {
        team: shared.token(),
    });
    outcome
}

/// Team-of-one executor: sequential semantics, but still under a
/// (size-1) team context so constructs observe consistent
/// `thread_id`/`team_size` values — and still under the watchdog when a
/// deadline is armed, so a single-member region parked in a library
/// primitive (say, a future that is never fulfilled) is force-cancelled
/// and diagnosed as [`RegionError::Stalled`] instead of parking forever.
fn inline_region<F>(
    shared: &Arc<TeamShared>,
    payload: &PayloadSlot,
    body: &F,
    deadline: Option<Duration>,
) where
    F: Fn() + Sync,
{
    let _watchdog = deadline.map(|d| spawn_watchdog(Arc::clone(shared), d));
    let r = catch_unwind(AssertUnwindSafe(|| {
        let _guard = CtxGuard::enter(Arc::clone(shared), 0);
        body();
    }));
    record_member_exit(shared, payload, r);
    shared.shutdown_watch(); // watchdog (if any) exits on its next tick
}

/// Try to lease a hot team for this region. The cache only serves
/// top-level regions: a nested region's caller may itself be a hot-team
/// worker mid-dispatch, and the spawn executor handles arbitrary nesting
/// depth without lease re-entrancy questions.
fn hot_lease(cfg: &RegionConfig, rt: &runtime::Runtime, n: usize) -> Option<crate::pool::HotLease> {
    if cfg.pooled == Some(false) || !rt.pool_enabled() || ctx::level() > 0 {
        return None;
    }
    rt.lease(n)
}

/// The hot-team executor behind the default [`parallel_with`] path: the
/// leased team's parked workers run the body instead of freshly spawned
/// threads. Same structure and same contracts as [`scoped_region`] —
/// full join, cooperative watchdog, registered join wait site — with the
/// thread-creation cost paid once per team, not per region.
///
/// Lifetime note: the body and panic slot cross into the workers via the
/// pool's lifetime-erased dispatch; `join_workers` returning is what
/// bounds every worker access within this frame. The watchdog is armed
/// *before* dispatch so no panic (e.g. watchdog spawn failure) can
/// unwind this frame between dispatch and join.
fn hot_region<F>(
    team: &crate::pool::HotTeam,
    deadline: Option<Duration>,
    shared: &Arc<TeamShared>,
    payload: &PayloadSlot,
    body: &F,
) where
    F: Fn() + Sync,
{
    debug_assert_eq!(team.size(), shared.n);
    let _watchdog = deadline.map(|d| spawn_watchdog(Arc::clone(shared), d));
    team.dispatch(shared, payload, body);
    let r = catch_unwind(AssertUnwindSafe(|| {
        let _guard = CtxGuard::enter(Arc::clone(shared), 0);
        body();
    }));
    record_member_exit(shared, payload, r);
    {
        // As in `scoped_region`: the join is a registered wait site so
        // the watchdog can adjudicate a stall even when no member is
        // parked in a library primitive.
        let _w = shared.begin_wait(0, WaitSite::Join);
        team.join_workers();
    }
    shared.shutdown_watch(); // watchdog (if any) exits on its next tick
}

/// The spawning executor behind [`parallel_with`] / [`try_parallel_with`]
/// when the hot-team cache is unavailable (nested regions, pooling
/// disabled, worker-spawn failure): scoped threads, always a full join —
/// the body may capture the caller's frame by reference precisely
/// because no member can outlive this call. Mirrors paper Figure 9:
/// spawn n−1 workers, the master executes the body itself, then joins
/// the rest.
///
/// A watchdog (when armed) is *cooperative*: on a stall it force-cancels
/// the team so members parked in library primitives unwind and the join
/// completes, but it never abandons a member — a thread wedged in
/// non-cooperative user code delays the join until it returns. Safety
/// over liveness; [`detached_region`] makes the opposite trade.
fn scoped_region<F>(
    n: usize,
    deadline: Option<Duration>,
    shared: &Arc<TeamShared>,
    payload: &PayloadSlot,
    body: &F,
) where
    F: Fn() + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..n)
            .map(|tid| {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("aomp-l{}-t{tid}", shared.level))
                    .spawn_scoped(scope, move || {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            let _guard = CtxGuard::enter(Arc::clone(&shared), tid);
                            body();
                        }));
                        record_member_exit(&shared, payload, r);
                    })
                    .expect("failed to spawn aomp team thread")
            })
            .collect();
        let _watchdog = deadline.map(|d| spawn_watchdog(Arc::clone(shared), d));
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = CtxGuard::enter(Arc::clone(shared), 0);
            body();
        }));
        record_member_exit(shared, payload, r);
        {
            // The join is a registered wait site: a stall where every
            // member is either exited or wedged in user code (nobody
            // parked in a library primitive) is still visible to the
            // watchdog through the waiting master.
            let _w = shared.begin_wait(0, WaitSite::Join);
            for h in handles {
                let _ = h.join();
            }
        }
        shared.shutdown_watch(); // watchdog (if any) exits on its next tick
    });
}

/// Everything a detached worker shares with its region: the body, the
/// first-panic slot and the completion latch, jointly owned via `Arc`.
/// An abandoned straggler holds its own `Arc` clone, so the frame
/// outlives the region call for as long as any member might touch it —
/// ownership is what makes abandonment on the stall path memory-safe
/// (contrast with borrowing the master's stack, which would be a
/// use-after-free the moment the caller is released).
struct RegionFrame {
    body: Box<dyn Fn() + Send + Sync>,
    payload: PayloadSlot,
    latch: Latch,
}

/// Completion latch for detached workers. The `closed` flag makes the
/// region's verdict deterministic: once the master gave up waiting
/// (stall grace expired), a straggler's late exit record is dropped
/// rather than mutating a payload slot the master already classified.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    closed: bool,
}

impl Latch {
    fn new(workers: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: workers,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Worker exit: records the result unless the master already closed
    /// the latch (the stall verdict supersedes a straggler's outcome).
    fn finish(
        &self,
        shared: &TeamShared,
        payload: &PayloadSlot,
        r: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        record_member_exit(shared, payload, r);
        st.remaining -= 1;
        self.cv.notify_all();
    }

    /// Wait until all workers finished, or — only once `give_up_after`
    /// yields a deadline — until that deadline passes, closing the latch.
    /// Returns `true` when fully joined.
    fn join(&self, mut give_up_after: impl FnMut() -> Option<Instant>) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.remaining == 0 {
                return true;
            }
            if let Some(d) = give_up_after() {
                if Instant::now() >= d {
                    st.closed = true;
                    return false;
                }
            }
            self.cv.wait_for(&mut st, crate::barrier::PARK_TIMEOUT);
        }
    }
}

/// The owning executor behind [`try_parallel_detached`]: workers are
/// detached OS threads so a wedged member cannot hold the caller
/// hostage. Each worker co-owns the [`RegionFrame`]; on a stall the
/// watchdog force-cancels the team, wakes every parked waiter, and the
/// master abandons any straggler after a short grace period.
fn detached_region<F>(
    n: usize,
    deadline: Option<Duration>,
    shared: &Arc<TeamShared>,
    body: F,
) -> RawOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let frame = Arc::new(RegionFrame {
        body: Box::new(body),
        payload: Mutex::new(None),
        latch: Latch::new(n - 1),
    });

    for tid in 1..n {
        let shared = Arc::clone(shared);
        let frame = Arc::clone(&frame);
        std::thread::Builder::new()
            .name(format!("aomp-l{}-t{tid}", shared.level))
            .spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let _guard = CtxGuard::enter(Arc::clone(&shared), tid);
                    (frame.body)();
                }));
                frame.latch.finish(&shared, &frame.payload, r);
            })
            .expect("failed to spawn aomp team thread");
    }

    let _watchdog = deadline.map(|d| spawn_watchdog(Arc::clone(shared), d));

    let r = catch_unwind(AssertUnwindSafe(|| {
        let _guard = CtxGuard::enter(Arc::clone(shared), 0);
        (frame.body)();
    }));
    record_member_exit(shared, &frame.payload, r);

    // Join the workers. Normal completion waits indefinitely; once the
    // watchdog declared a stall, wait only a grace period (enough for
    // members parked in library primitives to observe the cancel and
    // unwind), then abandon stragglers wedged in user code.
    let grace = deadline
        .unwrap_or(Duration::from_millis(100))
        .min(Duration::from_millis(100));
    let mut grace_deadline: Option<Instant> = None;
    {
        // As in `scoped_region`, the join is a registered wait site so
        // the watchdog can adjudicate a stall even when no member is
        // parked in a library primitive.
        let _w = shared.begin_wait(0, WaitSite::Join);
        frame.latch.join(|| {
            if shared.stall_declared() {
                Some(*grace_deadline.get_or_insert_with(|| Instant::now() + grace))
            } else {
                None
            }
        });
    }
    shared.shutdown_watch(); // watchdog (if any) exits on its next tick
    classify(shared, &frame.payload)
}

fn spawn_watchdog(shared: Arc<TeamShared>, deadline: Duration) -> std::thread::JoinHandle<()> {
    // The time base is pinned here, before the thread starts: a watchdog
    // armed outside a test's virtual-clock window stays on wall-clock
    // time even if a window opens while it runs (see `clock`).
    let clock = crate::clock::mode();
    std::thread::Builder::new()
        .name("aomp-watchdog".into())
        .spawn(move || {
            // Poll a few times per deadline. Real mode slices each poll
            // so region completion ends the thread promptly; in virtual
            // mode every sleep is already a ~200us real yield, so the
            // slice is the whole poll interval (short virtual slices
            // would just multiply yields without improving shutdown
            // latency).
            let poll = (deadline / 8).max(Duration::from_millis(1));
            let slice = match clock {
                crate::clock::ClockMode::Real => poll.min(Duration::from_millis(10)),
                crate::clock::ClockMode::Virtual => poll,
            };
            let mut last_progress = shared.progress();
            let mut last_change = clock.now();
            loop {
                let mut slept = Duration::ZERO;
                while slept < poll {
                    if shared.watch_shutdown() {
                        return;
                    }
                    clock.sleep(slice);
                    slept += slice;
                }
                if shared.watch_shutdown() {
                    return;
                }
                let p = shared.progress();
                if p != last_progress {
                    last_progress = p;
                    last_change = clock.now();
                    continue;
                }
                if clock.now().saturating_sub(last_change) < deadline {
                    continue;
                }
                let blocked = shared.blocked_snapshot();
                if blocked.is_empty() {
                    // No member parked in a library primitive: threads
                    // are (presumably) computing. Not a stall we can
                    // adjudicate — keep watching.
                    continue;
                }
                shared.declare_stalled(blocked);
                return;
            }
        })
        .expect("failed to spawn aomp watchdog")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{cancel_team, cancellation_point, team_size, thread_id};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn all_threads_execute_body() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn thread_ids_are_distinct_and_dense() {
        let ids = StdMutex::new(HashSet::new());
        parallel_with(RegionConfig::new().threads(6), || {
            ids.lock().unwrap().insert(thread_id());
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids, (0..6).collect::<HashSet<_>>());
    }

    #[test]
    fn master_is_calling_thread() {
        let master_seen = AtomicUsize::new(0);
        let outer = std::thread::current().id();
        parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 0 {
                assert_eq!(std::thread::current().id(), outer);
                master_seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(master_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_thread_region_runs_inline() {
        let flag = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(1), || {
            flag.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn region_sets_team_size() {
        parallel_with(RegionConfig::new().threads(5), || {
            assert_eq!(team_size(), 5);
        });
        assert_eq!(team_size(), 1);
    }

    #[test]
    fn nested_regions_multiply() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            parallel_with(RegionConfig::new().threads(3), || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn nested_disabled_serialises_inner() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            parallel_with(RegionConfig::new().threads(3).nested(false), || {
                assert_eq!(team_size(), 1);
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallel_disabled_runs_sequentially() {
        crate::runtime::set_parallel_enabled(false);
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(8), || {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        crate::runtime::set_parallel_enabled(true);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_map_collects_by_tid() {
        let v = parallel_map(RegionConfig::new().threads(4), |tid| tid * 10);
        assert_eq!(v, vec![0, 10, 20, 30]);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_with(RegionConfig::new().threads(2), || {
                if thread_id() == 1 {
                    panic!("worker exploded");
                }
                // Master waits at a team barrier; poison must unblock it.
                crate::ctx::barrier();
            });
        });
        assert!(result.is_err());
        // The runtime must be usable again afterwards.
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn if_clause_serialises_when_false() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4).only_if(false), || {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
        parallel_with(RegionConfig::new().threads(4).only_if(true), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = RegionConfig::new().threads(0);
    }

    #[test]
    fn try_parallel_reports_panic() {
        let r = try_parallel_with(RegionConfig::new().threads(2), || {
            if thread_id() == 1 {
                panic!("deliberate failure");
            }
            crate::ctx::barrier();
        });
        match r {
            Err(RegionError::Panicked { payload_msg }) => {
                assert_eq!(payload_msg, "deliberate failure");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn try_parallel_ok_on_success() {
        let count = AtomicUsize::new(0);
        let r = try_parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert!(r.is_ok());
        assert!(count.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn cancel_team_reports_cancelled() {
        let r = try_parallel_with(RegionConfig::new().threads(3).cancellable(true), || {
            if thread_id() == 1 {
                assert!(cancel_team());
            }
            // Everyone eventually reaches a cancellation point.
            loop {
                if cancellation_point().is_err() {
                    break;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(r, Err(RegionError::Cancelled));
    }

    #[test]
    fn cancel_requires_cancellable() {
        let cancelled = AtomicUsize::new(0);
        let r = try_parallel_with(RegionConfig::new().threads(2), || {
            if !cancel_team() {
                cancelled.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(r.is_ok(), "cancel refused => region completes normally");
        assert_eq!(cancelled.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cancelled_region_panicking_api_is_silent() {
        // The panicking API treats cancellation as a benign early exit.
        parallel_with(RegionConfig::new().threads(2).cancellable(true), || {
            cancel_team();
            crate::ctx::barrier(); // unwinds with Cancelled; swallowed
        });
    }

    #[test]
    fn stray_cancelled_payload_is_a_real_panic() {
        // `panic_any(Cancelled)` from user code on a team that was never
        // cancelled must not impersonate a team cancel (the team did not
        // opt in) — it is reported as a panic.
        let r = try_parallel_with(RegionConfig::new().threads(2), || {
            if thread_id() == 1 {
                std::panic::panic_any(Cancelled);
            }
            crate::ctx::barrier();
        });
        match r {
            Err(RegionError::Panicked { payload_msg }) => {
                assert!(payload_msg.contains("cancelled"), "{payload_msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_converts_hang_to_stalled() {
        let deadline = Duration::from_millis(150);
        let t0 = Instant::now();
        let r = try_parallel_detached(
            RegionConfig::new().threads(3).stall_deadline(deadline),
            || {
                if thread_id() == 2 {
                    // Wedged in "user code": sleeps past any deadline and
                    // never reaches a cancellation point. The detached
                    // executor abandons it (safely: it co-owns the region
                    // frame) instead of waiting the hour out.
                    std::thread::sleep(Duration::from_secs(3600));
                }
                crate::ctx::barrier();
            },
        );
        let elapsed = t0.elapsed();
        match r {
            Err(RegionError::Stalled { blocked }) => {
                let tids: Vec<usize> = blocked.iter().map(|(t, _)| *t).collect();
                assert!(
                    tids.contains(&0) && tids.contains(&1),
                    "barrier waiters named: {tids:?}"
                );
                assert!(
                    !tids.contains(&2),
                    "the wedged thread is not at a wait site"
                );
                assert!(blocked.iter().all(|(_, s)| *s == WaitSite::Barrier));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(
            elapsed < deadline * 4,
            "returned within bounded time, took {elapsed:?}"
        );
        // The runtime is usable afterwards.
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn detached_stall_with_no_library_waiters_is_caught() {
        // Every member is either exited (the master, waiting at the
        // region join) or wedged in user code — nobody is parked in a
        // library primitive. The join wait site lets the watchdog
        // adjudicate anyway.
        let r = try_parallel_detached(
            RegionConfig::new()
                .threads(2)
                .stall_deadline(Duration::from_millis(150)),
            || {
                if thread_id() == 1 {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            },
        );
        match r {
            Err(RegionError::Stalled { blocked }) => {
                assert_eq!(blocked, vec![(0, WaitSite::Join)]);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn scoped_watchdog_reports_sync_deadlock() {
        // A synchronisation-level deadlock under the borrowing API: the
        // worker waits at a second barrier round the master never joins.
        // The cooperative watchdog cancels, the worker unwinds, the full
        // join completes and the caller gets the diagnosis.
        let r = try_parallel_with(
            RegionConfig::new()
                .threads(2)
                .stall_deadline(Duration::from_millis(150)),
            || {
                crate::ctx::barrier();
                if thread_id() == 1 {
                    crate::ctx::barrier();
                }
            },
        );
        match r {
            Err(RegionError::Stalled { blocked }) => {
                assert!(
                    blocked.contains(&(1, WaitSite::Barrier)),
                    "the deadlocked worker is named: {blocked:?}"
                );
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn single_thread_region_watchdog_fires() {
        // The watchdog also covers teams of one (e.g. a region serialised
        // by the kill switch or `only_if(false)`): a single member parked
        // in a library primitive is cancelled and diagnosed.
        let r = try_parallel_with(
            RegionConfig::new()
                .threads(1)
                .stall_deadline(Duration::from_millis(150)),
            || {
                let (_promise, fut) = crate::task::future_pair::<u32>();
                // Never fulfilled: parks at FutureGet until the watchdog
                // force-cancels the team.
                let _ = fut.get();
            },
        );
        match r {
            Err(RegionError::Stalled { blocked }) => {
                assert_eq!(blocked, vec![(0, WaitSite::FutureGet)]);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_does_not_fire_on_healthy_region() {
        let sum = AtomicUsize::new(0);
        let r = try_parallel_with(
            RegionConfig::new()
                .threads(4)
                .stall_deadline(Duration::from_secs(30)),
            || {
                for _ in 0..5 {
                    sum.fetch_add(1, Ordering::SeqCst);
                    crate::ctx::barrier();
                }
            },
        );
        assert!(r.is_ok());
        assert_eq!(sum.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn default_stall_deadline_applies() {
        // A private runtime carries the default deadline, so this test no
        // longer mutates (or serialises against) process-global state.
        let rt = runtime::Runtime::builder()
            .stall_deadline(Duration::from_millis(150))
            .build();
        // Same barrier-round mismatch as
        // `scoped_watchdog_reports_sync_deadlock`, but the watchdog is
        // armed by the runtime's default instead of the region config.
        let r = try_parallel_with(RegionConfig::new().threads(2).runtime(&rt), || {
            crate::ctx::barrier();
            if thread_id() == 1 {
                crate::ctx::barrier();
            }
        });
        assert!(matches!(r, Err(RegionError::Stalled { .. })), "got {r:?}");
    }
}
