//! Parallel regions — the main source of parallelism (paper §III-A).
//!
//! A parallel region is the context of a method execution: when the master
//! thread enters the region a team of threads is created, every thread
//! executes the region body, and all of them implicitly synchronise when
//! the body ends (paper Figure 9). This module is the runtime that the
//! `ParallelRegion` aspect (crate `aomp-weaver`) and the `#[parallel]`
//! annotation (crate `aomp-macros`) both dispatch into.
//!
//! # Failure semantics
//!
//! Two API surfaces over one executor:
//!
//! * [`parallel`] / [`parallel_with`] — the classic panicking API: a team
//!   thread's panic poisons the team (unblocking siblings) and is
//!   re-raised on the caller; cancellation is a benign early exit; a
//!   watchdog-declared stall panics with the diagnosis.
//! * [`try_parallel`] / [`try_parallel_with`] — the fallible API:
//!   returns [`RegionError::Panicked`], [`RegionError::Cancelled`] or
//!   [`RegionError::Stalled`] instead.
//!
//! Cancellation follows OpenMP 4.0's `cancel parallel` model: opt in with
//! [`RegionConfig::cancellable`], request with
//! [`cancel_team`](crate::ctx::cancel_team), observe at every
//! cancellation point (barriers, chunk handouts, critical entry,
//! broadcasts, task joins, explicit
//! [`cancellation_point`](crate::ctx::cancellation_point)).
//!
//! [`RegionConfig::stall_deadline`] arms a watchdog thread that
//! force-cancels the team when it stops making progress while members sit
//! blocked in synchronisation primitives — converting a deadlock or a
//! hung worker into a diagnosable [`RegionError::Stalled`] naming each
//! blocked thread's wait site.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::ctx::{self, CtxGuard, TeamShared};
use crate::error::{self, Cancelled, RegionError, TeamPoisoned, WaitSite};
use crate::runtime;

/// Configuration of a parallel region — the Rust analogue of
/// `@Parallel(threads = n)` / overriding `numThreads()` in a concrete
/// aspect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionConfig {
    threads: Option<usize>,
    /// Allow creating a nested team when already inside a region.
    /// Defaults to `true` (the library supports nested parallel regions,
    /// paper §III-D); disable to serialise inner regions like OpenMP with
    /// `OMP_NESTED=false`.
    nested: Option<bool>,
    /// OpenMP `if` clause: when `false` the region runs with one thread.
    only_if: Option<bool>,
    /// Opt-in for [`cancel_team`](crate::ctx::cancel_team) (OpenMP 4.0
    /// requires cancellation to be activated).
    cancellable: Option<bool>,
    /// Arm the stall watchdog with this deadline.
    stall_deadline: Option<Duration>,
}

impl RegionConfig {
    /// A region using the runtime default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the team size explicitly (`@Parallel(threads = n)`).
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "a parallel region needs at least one thread");
        self.threads = Some(n);
        self
    }

    /// Control whether a region encountered inside another region creates
    /// a real nested team (`true`, default) or runs with a team of one.
    pub fn nested(mut self, nested: bool) -> Self {
        self.nested = Some(nested);
        self
    }

    /// OpenMP's `if` clause: parallelise only when `cond` is true —
    /// typically a problem-size threshold (small inputs are not worth a
    /// team spawn).
    pub fn only_if(mut self, cond: bool) -> Self {
        self.only_if = Some(cond);
        self
    }

    /// Allow [`cancel_team`](crate::ctx::cancel_team) to cancel this
    /// team (OpenMP 4.0's `cancel` must be activated; default `false`).
    /// The stall watchdog cancels regardless of this flag.
    pub fn cancellable(mut self, on: bool) -> Self {
        self.cancellable = Some(on);
        self
    }

    /// Arm a stall watchdog: if the team makes no progress (no chunk
    /// handouts, no wait-site transitions) for `deadline` while at least
    /// one member is blocked in a team synchronisation primitive, the
    /// team is force-cancelled and the region reports
    /// [`RegionError::Stalled`] with each blocked thread's wait site.
    ///
    /// Choose a deadline longer than the region's longest
    /// synchronisation-free compute phase: the watchdog cannot
    /// distinguish a slow chunk from a hung one.
    pub fn stall_deadline(mut self, deadline: Duration) -> Self {
        assert!(!deadline.is_zero(), "stall deadline must be non-zero");
        self.stall_deadline = Some(deadline);
        self
    }

    fn resolve_threads(&self) -> usize {
        let n = self.threads.unwrap_or_else(runtime::default_threads);
        if !runtime::parallel_enabled() || self.only_if == Some(false) {
            return 1;
        }
        if ctx::level() > 0 && !self.nested.unwrap_or(true) {
            return 1;
        }
        n
    }

    fn effective_stall_deadline(&self) -> Option<Duration> {
        self.stall_deadline.or_else(runtime::default_stall_deadline)
    }
}

/// Execute `body` as a parallel region with the default configuration.
///
/// Every thread of the new team runs `body` once; the call returns after
/// all of them finished (the implicit join of paper Figure 9). Inside the
/// body, [`ctx::thread_id`] yields the team-relative id.
///
/// If any team thread panics the team is poisoned (siblings blocked in
/// team synchronisation unwind with
/// [`TeamPoisoned`](crate::error::TeamPoisoned)) and the panic propagates
/// to the caller. Cancellation is treated as a successful early exit; use
/// [`try_parallel`] to observe it.
pub fn parallel<F>(body: F)
where
    F: Fn() + Sync,
{
    parallel_with(RegionConfig::default(), body)
}

/// Execute `body` as a parallel region with an explicit [`RegionConfig`].
/// See [`parallel`] for the panic/cancel semantics.
pub fn parallel_with<F>(cfg: RegionConfig, body: F)
where
    F: Fn() + Sync,
{
    match run_region(cfg, body) {
        RawOutcome::Completed | RawOutcome::Cancelled => {}
        RawOutcome::Stalled(blocked) => {
            panic!("{}", RegionError::Stalled { blocked })
        }
        RawOutcome::Panicked(payload) => resume_unwind(payload),
    }
}

/// Fallible variant of [`parallel`]: reports team panics, cancellation
/// and watchdog-declared stalls as a [`RegionError`] instead of
/// panicking.
pub fn try_parallel<F>(body: F) -> Result<(), RegionError>
where
    F: Fn() + Sync,
{
    try_parallel_with(RegionConfig::default(), body)
}

/// Fallible variant of [`parallel_with`].
///
/// Returns `Err(RegionError::Panicked)` if any member panicked (first
/// payload wins, summarised as a message), `Err(RegionError::Cancelled)`
/// after a [`cancel_team`](crate::ctx::cancel_team), and
/// `Err(RegionError::Stalled)` when the watchdog armed by
/// [`RegionConfig::stall_deadline`] declared the region stuck.
///
/// # Stall recovery caveat
///
/// A region with a stall deadline runs its workers detached (not scoped)
/// so the caller can be released even when a worker is wedged in user
/// code and never reaches a cancellation point. On a `Stalled` return,
/// members blocked in library primitives have been woken and joined, but
/// a member stuck inside user code (e.g. an unbounded sleep or an
/// external call that never returns) is *abandoned*: it still holds
/// references to the region body and its captures. Such a thread must
/// never resume — treat the data it captures as leaked for the process
/// lifetime. This is the deliberate trade against the alternative, which
/// is deadlocking the caller forever.
pub fn try_parallel_with<F>(cfg: RegionConfig, body: F) -> Result<(), RegionError>
where
    F: Fn() + Sync,
{
    match run_region(cfg, body) {
        RawOutcome::Completed => Ok(()),
        RawOutcome::Cancelled => Err(RegionError::Cancelled),
        RawOutcome::Stalled(blocked) => Err(RegionError::Stalled { blocked }),
        RawOutcome::Panicked(payload) => Err(RegionError::Panicked {
            payload_msg: error::payload_msg(payload.as_ref()),
        }),
    }
}

/// Execute `body` on a team and collect each thread's return value,
/// indexed by thread id. A convenience not present in OpenMP but natural
/// in Rust; used by tests and by reductions.
pub fn parallel_map<F, T>(cfg: RegionConfig, body: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let n = cfg.resolve_threads();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    {
        let results = &results;
        let body = &body;
        parallel_with(cfg, move || {
            let tid = ctx::thread_id();
            let v = body(tid);
            *results[tid].lock() = Some(v);
        });
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every team thread stores a result"))
        .collect()
}

// ---------------------------------------------------------------------
// Executor internals
// ---------------------------------------------------------------------

enum RawOutcome {
    Completed,
    Cancelled,
    Stalled(Vec<(usize, WaitSite)>),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// First *real* panic payload of the team (benign `Cancelled` /
/// `TeamPoisoned` unwinds are filtered out by [`record_member_exit`]).
type PayloadSlot = Mutex<Option<Box<dyn std::any::Any + Send>>>;

/// Classify one member's exit. Benign unwinds (`Cancelled` from a
/// cancellation point, `TeamPoisoned` echoes of a sibling's panic) are
/// absorbed; a real panic poisons the team and its payload is kept
/// (first wins).
fn record_member_exit(
    shared: &TeamShared,
    payload: &PayloadSlot,
    r: Result<(), Box<dyn std::any::Any + Send>>,
) {
    let Err(p) = r else { return };
    if p.downcast_ref::<TeamPoisoned>().is_some() {
        return;
    }
    if p.downcast_ref::<Cancelled>().is_some() {
        // A `Cancelled` unwind outside an actual team cancel (user code
        // re-raising it) still must not strand siblings at barriers.
        shared.cancel(true);
        return;
    }
    shared.poison();
    let mut slot = payload.lock();
    if slot.is_none() {
        *slot = Some(p);
    }
}

fn classify(shared: &TeamShared, payload: &PayloadSlot) -> RawOutcome {
    if let Some(p) = payload.lock().take() {
        return RawOutcome::Panicked(p);
    }
    if let Some(blocked) = shared.take_stalled() {
        return RawOutcome::Stalled(blocked);
    }
    if shared.cancelled.load(Ordering::Acquire) {
        return RawOutcome::Cancelled;
    }
    RawOutcome::Completed
}

fn run_region<F>(cfg: RegionConfig, body: F) -> RawOutcome
where
    F: Fn() + Sync,
{
    let n = cfg.resolve_threads();
    let deadline = cfg.effective_stall_deadline();
    let level = ctx::level() + 1;
    let shared = Arc::new(TeamShared::with_robustness(
        n,
        level,
        cfg.cancellable.unwrap_or(false),
        deadline.is_some(),
    ));
    let payload: PayloadSlot = Mutex::new(None);

    if n == 1 {
        // Sequential semantics: still push a (size-1) team context so
        // constructs observe consistent `thread_id`/`team_size` values.
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = CtxGuard::enter(Arc::clone(&shared), 0);
            body();
        }));
        record_member_exit(&shared, &payload, r);
        return classify(&shared, &payload);
    }

    match deadline {
        None => scoped_region(n, &shared, &payload, &body),
        Some(d) => detached_region(n, d, &shared, &payload, &body),
    }
    classify(&shared, &payload)
}

/// The default executor: scoped threads, full join — panic/cancel safe,
/// no watchdog. Mirrors paper Figure 9: spawn n−1 workers, the master
/// executes the body itself, `std::thread::scope` joins the rest.
fn scoped_region<F>(n: usize, shared: &Arc<TeamShared>, payload: &PayloadSlot, body: &F)
where
    F: Fn() + Sync,
{
    std::thread::scope(|scope| {
        for tid in 1..n {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("aomp-l{}-t{tid}", shared.level))
                .spawn_scoped(scope, move || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let _guard = CtxGuard::enter(Arc::clone(&shared), tid);
                        body();
                    }));
                    record_member_exit(&shared, payload, r);
                })
                .expect("failed to spawn aomp team thread");
        }
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = CtxGuard::enter(Arc::clone(shared), 0);
            body();
        }));
        record_member_exit(shared, payload, r);
    });
}

/// Completion latch for detached workers.
///
/// The latch is also the abandonment gate: a worker's exit record (which
/// touches the master's stack-resident payload slot) and the master's
/// decision to give up are serialised under one lock, so once `closed`
/// is observed set, no straggler will ever touch master-owned memory
/// again — that is what makes returning from [`detached_region`] sound.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    closed: bool,
}

impl Latch {
    /// Worker exit: records the result unless the master already closed
    /// the latch (in which case master-owned memory may be gone and the
    /// result is dropped — the stall verdict supersedes it anyway).
    fn finish(
        &self,
        shared: &TeamShared,
        payload: &PayloadSlot,
        r: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        record_member_exit(shared, payload, r);
        st.remaining -= 1;
        self.cv.notify_all();
    }

    /// Wait until all workers finished, or — only once `give_up_after`
    /// yields a deadline — until that deadline passes, closing the latch.
    /// Returns `true` when fully joined.
    fn join(&self, mut give_up_after: impl FnMut() -> Option<Instant>) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.remaining == 0 {
                return true;
            }
            if let Some(d) = give_up_after() {
                if Instant::now() >= d {
                    st.closed = true;
                    return false;
                }
            }
            self.cv.wait_for(&mut st, crate::barrier::PARK_TIMEOUT);
        }
    }
}

/// Watchdog-armed executor: workers are detached so a wedged member
/// cannot hold the caller hostage (see the caveat on
/// [`try_parallel_with`]). A sidecar watchdog thread polls the team's
/// progress counter and wait-site registry; on a stall it force-cancels
/// the team, wakes every parked waiter, and the master abandons any
/// straggler after a short grace period.
fn detached_region<F>(
    n: usize,
    deadline: Duration,
    shared: &Arc<TeamShared>,
    payload: &PayloadSlot,
    body: &F,
) where
    F: Fn() + Sync,
{
    let latch = Arc::new(Latch {
        state: Mutex::new(LatchState {
            remaining: n - 1,
            closed: false,
        }),
        cv: Condvar::new(),
    });
    // Sharing across detached threads requires erasing the body's and
    // payload slot's lifetimes. SAFETY: every dereference is bounded by
    // the join below — except for abandoned stragglers on the stall
    // path, which by contract (see `try_parallel_with`) never resume.
    let body_ref: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    let payload_ref: &'static PayloadSlot =
        unsafe { std::mem::transmute::<&PayloadSlot, &'static PayloadSlot>(payload) };

    for tid in 1..n {
        let shared = Arc::clone(shared);
        let latch = Arc::clone(&latch);
        std::thread::Builder::new()
            .name(format!("aomp-l{}-t{tid}", shared.level))
            .spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let _guard = CtxGuard::enter(Arc::clone(&shared), tid);
                    body_ref();
                }));
                latch.finish(&shared, payload_ref, r);
            })
            .expect("failed to spawn aomp team thread");
    }

    let watchdog = spawn_watchdog(Arc::clone(shared), deadline);

    let r = catch_unwind(AssertUnwindSafe(|| {
        let _guard = CtxGuard::enter(Arc::clone(shared), 0);
        body();
    }));
    record_member_exit(shared, payload, r);

    // Join the workers. Normal completion waits indefinitely; once the
    // watchdog declared a stall, wait only a grace period (enough for
    // members parked in library primitives to observe the cancel and
    // unwind), then abandon stragglers wedged in user code.
    let grace = deadline.min(Duration::from_millis(100));
    let mut grace_deadline: Option<Instant> = None;
    latch.join(|| {
        if shared.stall_declared() {
            Some(*grace_deadline.get_or_insert_with(|| Instant::now() + grace))
        } else {
            None
        }
    });
    shared.shutdown_watch();
    drop(watchdog); // detached; exits on its next poll tick
}

fn spawn_watchdog(shared: Arc<TeamShared>, deadline: Duration) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("aomp-watchdog".into())
        .spawn(move || {
            // Poll a few times per deadline, in short slices so region
            // completion ends the thread promptly.
            let poll = (deadline / 8).max(Duration::from_millis(1));
            let slice = poll.min(Duration::from_millis(10));
            let mut last_progress = shared.progress();
            let mut last_change = Instant::now();
            loop {
                let mut slept = Duration::ZERO;
                while slept < poll {
                    if shared.watch_shutdown() {
                        return;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if shared.watch_shutdown() {
                    return;
                }
                let p = shared.progress();
                if p != last_progress {
                    last_progress = p;
                    last_change = Instant::now();
                    continue;
                }
                if last_change.elapsed() < deadline {
                    continue;
                }
                let blocked = shared.blocked_snapshot();
                if blocked.is_empty() {
                    // No member parked in a library primitive: threads
                    // are (presumably) computing. Not a stall we can
                    // adjudicate — keep watching.
                    continue;
                }
                shared.declare_stalled(blocked);
                return;
            }
        })
        .expect("failed to spawn aomp watchdog")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{cancel_team, cancellation_point, team_size, thread_id};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn all_threads_execute_body() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn thread_ids_are_distinct_and_dense() {
        let ids = StdMutex::new(HashSet::new());
        parallel_with(RegionConfig::new().threads(6), || {
            ids.lock().unwrap().insert(thread_id());
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids, (0..6).collect::<HashSet<_>>());
    }

    #[test]
    fn master_is_calling_thread() {
        let master_seen = AtomicUsize::new(0);
        let outer = std::thread::current().id();
        parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 0 {
                assert_eq!(std::thread::current().id(), outer);
                master_seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(master_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_thread_region_runs_inline() {
        let flag = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(1), || {
            flag.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn region_sets_team_size() {
        parallel_with(RegionConfig::new().threads(5), || {
            assert_eq!(team_size(), 5);
        });
        assert_eq!(team_size(), 1);
    }

    #[test]
    fn nested_regions_multiply() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            parallel_with(RegionConfig::new().threads(3), || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn nested_disabled_serialises_inner() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            parallel_with(RegionConfig::new().threads(3).nested(false), || {
                assert_eq!(team_size(), 1);
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallel_disabled_runs_sequentially() {
        crate::runtime::set_parallel_enabled(false);
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(8), || {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        crate::runtime::set_parallel_enabled(true);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_map_collects_by_tid() {
        let v = parallel_map(RegionConfig::new().threads(4), |tid| tid * 10);
        assert_eq!(v, vec![0, 10, 20, 30]);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_with(RegionConfig::new().threads(2), || {
                if thread_id() == 1 {
                    panic!("worker exploded");
                }
                // Master waits at a team barrier; poison must unblock it.
                crate::ctx::barrier();
            });
        });
        assert!(result.is_err());
        // The runtime must be usable again afterwards.
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn if_clause_serialises_when_false() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4).only_if(false), || {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
        parallel_with(RegionConfig::new().threads(4).only_if(true), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = RegionConfig::new().threads(0);
    }

    #[test]
    fn try_parallel_reports_panic() {
        let r = try_parallel_with(RegionConfig::new().threads(2), || {
            if thread_id() == 1 {
                panic!("deliberate failure");
            }
            crate::ctx::barrier();
        });
        match r {
            Err(RegionError::Panicked { payload_msg }) => {
                assert_eq!(payload_msg, "deliberate failure");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn try_parallel_ok_on_success() {
        let count = AtomicUsize::new(0);
        let r = try_parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert!(r.is_ok());
        assert!(count.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn cancel_team_reports_cancelled() {
        let r = try_parallel_with(RegionConfig::new().threads(3).cancellable(true), || {
            if thread_id() == 1 {
                assert!(cancel_team());
            }
            // Everyone eventually reaches a cancellation point.
            loop {
                if cancellation_point().is_err() {
                    break;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(r, Err(RegionError::Cancelled));
    }

    #[test]
    fn cancel_requires_cancellable() {
        let cancelled = AtomicUsize::new(0);
        let r = try_parallel_with(RegionConfig::new().threads(2), || {
            if !cancel_team() {
                cancelled.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(r.is_ok(), "cancel refused => region completes normally");
        assert_eq!(cancelled.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cancelled_region_panicking_api_is_silent() {
        // The panicking API treats cancellation as a benign early exit.
        parallel_with(RegionConfig::new().threads(2).cancellable(true), || {
            cancel_team();
            crate::ctx::barrier(); // unwinds with Cancelled; swallowed
        });
    }

    #[test]
    fn watchdog_converts_hang_to_stalled() {
        let deadline = Duration::from_millis(150);
        let t0 = Instant::now();
        let r = try_parallel_with(
            RegionConfig::new().threads(3).stall_deadline(deadline),
            || {
                if thread_id() == 2 {
                    // Wedged in "user code": sleeps past any deadline and
                    // never reaches a cancellation point.
                    std::thread::sleep(Duration::from_secs(3600));
                }
                crate::ctx::barrier();
            },
        );
        let elapsed = t0.elapsed();
        match r {
            Err(RegionError::Stalled { blocked }) => {
                let tids: Vec<usize> = blocked.iter().map(|(t, _)| *t).collect();
                assert!(
                    tids.contains(&0) && tids.contains(&1),
                    "barrier waiters named: {tids:?}"
                );
                assert!(
                    !tids.contains(&2),
                    "the wedged thread is not at a wait site"
                );
                assert!(blocked.iter().all(|(_, s)| *s == WaitSite::Barrier));
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(
            elapsed < deadline * 4,
            "returned within bounded time, took {elapsed:?}"
        );
        // The runtime is usable afterwards.
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn watchdog_does_not_fire_on_healthy_region() {
        let sum = AtomicUsize::new(0);
        let r = try_parallel_with(
            RegionConfig::new()
                .threads(4)
                .stall_deadline(Duration::from_secs(30)),
            || {
                for _ in 0..5 {
                    sum.fetch_add(1, Ordering::SeqCst);
                    crate::ctx::barrier();
                }
            },
        );
        assert!(r.is_ok());
        assert_eq!(sum.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn default_stall_deadline_applies() {
        let _g = runtime::STALL_TEST_LOCK.lock().unwrap();
        runtime::set_default_stall_deadline(Some(Duration::from_millis(150)));
        let r = try_parallel_with(RegionConfig::new().threads(2), || {
            if thread_id() == 1 {
                std::thread::sleep(Duration::from_secs(3600));
            }
            crate::ctx::barrier();
        });
        runtime::set_default_stall_deadline(None);
        assert!(matches!(r, Err(RegionError::Stalled { .. })), "got {r:?}");
    }
}
