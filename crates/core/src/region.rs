//! Parallel regions — the main source of parallelism (paper §III-A).
//!
//! A parallel region is the context of a method execution: when the master
//! thread enters the region a team of threads is created, every thread
//! executes the region body, and all of them implicitly synchronise when
//! the body ends (paper Figure 9). This module is the runtime that the
//! `ParallelRegion` aspect (crate `aomp-weaver`) and the `#[parallel]`
//! annotation (crate `aomp-macros`) both dispatch into.

use std::sync::Arc;

use crate::ctx::{self, CtxGuard, TeamShared};
use crate::runtime;

/// Configuration of a parallel region — the Rust analogue of
/// `@Parallel(threads = n)` / overriding `numThreads()` in a concrete
/// aspect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionConfig {
    threads: Option<usize>,
    /// Allow creating a nested team when already inside a region.
    /// Defaults to `true` (the library supports nested parallel regions,
    /// paper §III-D); disable to serialise inner regions like OpenMP with
    /// `OMP_NESTED=false`.
    nested: Option<bool>,
    /// OpenMP `if` clause: when `false` the region runs with one thread.
    only_if: Option<bool>,
}

impl RegionConfig {
    /// A region using the runtime default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the team size explicitly (`@Parallel(threads = n)`).
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "a parallel region needs at least one thread");
        self.threads = Some(n);
        self
    }

    /// Control whether a region encountered inside another region creates
    /// a real nested team (`true`, default) or runs with a team of one.
    pub fn nested(mut self, nested: bool) -> Self {
        self.nested = Some(nested);
        self
    }

    /// OpenMP's `if` clause: parallelise only when `cond` is true —
    /// typically a problem-size threshold (small inputs are not worth a
    /// team spawn).
    pub fn only_if(mut self, cond: bool) -> Self {
        self.only_if = Some(cond);
        self
    }

    fn resolve_threads(&self) -> usize {
        let n = self.threads.unwrap_or_else(runtime::default_threads);
        if !runtime::parallel_enabled() || self.only_if == Some(false) {
            return 1;
        }
        if ctx::level() > 0 && !self.nested.unwrap_or(true) {
            return 1;
        }
        n
    }
}

/// Execute `body` as a parallel region with the default configuration.
///
/// Every thread of the new team runs `body` once; the call returns after
/// all of them finished (the implicit join of paper Figure 9). Inside the
/// body, [`ctx::thread_id`] yields the team-relative id.
///
/// If any team thread panics the team is poisoned (siblings blocked in
/// team synchronisation unwind with
/// [`TeamPoisoned`](crate::error::TeamPoisoned)) and the panic propagates
/// to the caller.
pub fn parallel<F>(body: F)
where
    F: Fn() + Sync,
{
    parallel_with(RegionConfig::default(), body)
}

/// Execute `body` as a parallel region with an explicit [`RegionConfig`].
pub fn parallel_with<F>(cfg: RegionConfig, body: F)
where
    F: Fn() + Sync,
{
    let n = cfg.resolve_threads();
    let level = ctx::level() + 1;
    let shared = Arc::new(TeamShared::new(n, level));

    if n == 1 {
        // Sequential semantics: still push a (size-1) team context so
        // constructs observe consistent `thread_id`/`team_size` values.
        let _guard = CtxGuard::enter(shared, 0);
        body();
        return;
    }

    std::thread::scope(|scope| {
        // Paper Figure 9: spawn n-1 workers; the master executes the body
        // itself and then joins the spawned threads (done implicitly by
        // `std::thread::scope`, which also re-raises their panics).
        for tid in 1..n {
            let shared = Arc::clone(&shared);
            let body = &body;
            std::thread::Builder::new()
                .name(format!("aomp-l{}-t{tid}", shared.level))
                .spawn_scoped(scope, move || {
                    let _guard = CtxGuard::enter(shared, tid);
                    body();
                })
                .expect("failed to spawn aomp team thread");
        }
        let _guard = CtxGuard::enter(Arc::clone(&shared), 0);
        body();
    });
}

/// Execute `body` on a team and collect each thread's return value,
/// indexed by thread id. A convenience not present in OpenMP but natural
/// in Rust; used by tests and by reductions.
pub fn parallel_map<F, T>(cfg: RegionConfig, body: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    use parking_lot::Mutex;
    let n = cfg.resolve_threads();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    {
        let results = &results;
        let body = &body;
        parallel_with(cfg, move || {
            let tid = ctx::thread_id();
            let v = body(tid);
            *results[tid].lock() = Some(v);
        });
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every team thread stores a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{team_size, thread_id};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn all_threads_execute_body() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn thread_ids_are_distinct_and_dense() {
        let ids = StdMutex::new(HashSet::new());
        parallel_with(RegionConfig::new().threads(6), || {
            ids.lock().unwrap().insert(thread_id());
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids, (0..6).collect::<HashSet<_>>());
    }

    #[test]
    fn master_is_calling_thread() {
        let master_seen = AtomicUsize::new(0);
        let outer = std::thread::current().id();
        parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 0 {
                assert_eq!(std::thread::current().id(), outer);
                master_seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(master_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_thread_region_runs_inline() {
        let flag = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(1), || {
            flag.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn region_sets_team_size() {
        parallel_with(RegionConfig::new().threads(5), || {
            assert_eq!(team_size(), 5);
        });
        assert_eq!(team_size(), 1);
    }

    #[test]
    fn nested_regions_multiply() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            parallel_with(RegionConfig::new().threads(3), || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn nested_disabled_serialises_inner() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            parallel_with(RegionConfig::new().threads(3).nested(false), || {
                assert_eq!(team_size(), 1);
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallel_disabled_runs_sequentially() {
        crate::runtime::set_parallel_enabled(false);
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(8), || {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        crate::runtime::set_parallel_enabled(true);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_map_collects_by_tid() {
        let v = parallel_map(RegionConfig::new().threads(4), |tid| tid * 10);
        assert_eq!(v, vec![0, 10, 20, 30]);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_with(RegionConfig::new().threads(2), || {
                if thread_id() == 1 {
                    panic!("worker exploded");
                }
                // Master waits at a team barrier; poison must unblock it.
                crate::ctx::barrier();
            });
        });
        assert!(result.is_err());
        // The runtime must be usable again afterwards.
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(2), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn if_clause_serialises_when_false() {
        let count = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4).only_if(false), || {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
        parallel_with(RegionConfig::new().threads(4).only_if(true), || {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = RegionConfig::new().threads(0);
    }
}
