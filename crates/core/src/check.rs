//! `aomp::check` — the runtime half of race detection: an armable sink
//! for *tracked* shared-memory accesses.
//!
//! The checker crate (`aomp-check`) builds a happens-before relation
//! from the [`hook`](crate::hook) event stream; what it cannot see from
//! events alone is the data. This module closes that gap with a
//! deliberately tiny instrumented-access layer:
//!
//! * [`SyncSlice::tracked`](crate::cell::SyncSlice::tracked) /
//!   [`SyncVec::tracked`](crate::cell::SyncVec::tracked) — shared arrays
//!   whose element accesses report `{address, index, is_write, thread}`
//!   shadow events to the armed [`AccessSink`];
//! * [`Tracked<T>`] — a named scalar cell for shared flags/counters in
//!   tests, with the same reporting.
//!
//! The cost discipline mirrors the hook/obs gate: when no checker is
//! armed, a tracked access costs exactly **one relaxed load** of the
//! shared gate byte (bit [`obs::F_RACE`](crate::obs)) plus a predictable
//! branch — and an *untracked* `SyncSlice`/`SyncVec` (built with
//! `new`/`zeroed`) does not even load the gate. Arming is process-global
//! and intended for one exploration session at a time; `aomp-check`
//! serialises sessions behind its own lock.

use std::cell::UnsafeCell;

use crate::hook::TeamId;
use crate::obs;
use parking_lot::Mutex;

/// One tracked shared-memory access, reported to the armed sink.
///
/// `addr` is the element's memory address — the identity the race
/// detector keys its shadow state on (aliased views of the same storage
/// collapse naturally). `name`/`index` are for humans: they name the
/// access site in a race report.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Address of the accessed element (stable for the array's lifetime).
    pub addr: usize,
    /// Declared name of the tracked array/cell (e.g. `"sor.G"`).
    pub name: &'static str,
    /// Element index within the tracked array (`0` for scalar cells).
    pub index: usize,
    /// `true` for writes (including `&mut` borrows), `false` for reads.
    pub is_write: bool,
}

/// Consumer of tracked accesses. Implemented by the `aomp-check`
/// exploration controller; armed for the duration of one explored
/// schedule.
pub trait AccessSink: Send + Sync {
    /// Called once per tracked access, on the accessing thread, with the
    /// thread's innermost team identity.
    fn access(&self, team: TeamId, tid: usize, ev: &AccessEvent);
}

static SINK: Mutex<Option<&'static dyn AccessSink>> = Mutex::new(None);

/// Arm race checking: subsequent tracked accesses report to `sink`.
///
/// Replaces any previously-armed sink. The registry holds `&'static`
/// because accesses may race with disarming on other threads; the
/// checker keeps its controller in a `static`.
pub fn arm(sink: &'static dyn AccessSink) {
    let mut g = SINK.lock();
    *g = Some(sink);
    obs::gate_set(obs::F_RACE);
}

/// Disarm race checking; tracked accesses go back to one relaxed load.
pub fn disarm() {
    let mut g = SINK.lock();
    obs::gate_clear(obs::F_RACE);
    *g = None;
}

/// True when a sink is armed. One relaxed load — this is the fast-path
/// gate every tracked access reads first.
#[inline(always)]
pub fn armed() -> bool {
    obs::gate() & obs::F_RACE != 0
}

/// Report a tracked access if a sink is armed. Gate-checked here so call
/// sites can stay a single `report(..)` line; the slow path resolves the
/// calling thread's team context and skips accesses made outside any
/// team (setup/teardown code on the master thread races with nobody the
/// checker controls).
#[inline]
pub fn report(name: &'static str, addr: usize, index: usize, is_write: bool) {
    if armed() {
        report_slow(name, addr, index, is_write);
    }
}

#[cold]
fn report_slow(name: &'static str, addr: usize, index: usize, is_write: bool) {
    let sink = *SINK.lock();
    let Some(sink) = sink else { return };
    crate::ctx::with_current(|c| {
        if let Some(c) = c {
            let ev = AccessEvent {
                addr,
                name,
                index,
                is_write,
            };
            sink.access(c.shared.token(), c.tid, &ev);
        }
    });
}

/// A named, tracked scalar cell for shared state in tests — the
/// scalar counterpart of [`SyncSlice::tracked`](crate::cell::SyncSlice::tracked).
///
/// # Safety contract
/// Identical to [`SyncSlice`](crate::cell::SyncSlice): the cell is
/// unguarded, and callers must uphold a disjoint-writer discipline.
/// That contract is exactly what the race detector checks — a test that
/// *violates* it on purpose must only do so for `Copy` plain-old-data
/// (a torn `u64` under a real race is still initialised memory, and the
/// checker serialises explored schedules so accesses never physically
/// overlap there).
pub struct Tracked<T> {
    name: &'static str,
    cell: UnsafeCell<T>,
}

// SAFETY: access discipline is delegated to the caller (see type docs).
unsafe impl<T: Send> Sync for Tracked<T> {}
unsafe impl<T: Send> Send for Tracked<T> {}

impl<T> Tracked<T> {
    /// Wrap `v` under `name` (the label race reports use).
    pub fn new(name: &'static str, v: T) -> Self {
        Self {
            name,
            cell: UnsafeCell::new(v),
        }
    }

    #[inline]
    fn note(&self, is_write: bool) {
        report(self.name, self.cell.get() as usize, 0, is_write);
    }

    /// Read the value by shared reference.
    ///
    /// # Safety
    /// No concurrent writer.
    #[inline]
    pub unsafe fn get(&self) -> &T {
        self.note(false);
        &*self.cell.get()
    }

    /// Write the value.
    ///
    /// # Safety
    /// This thread is the sole accessor for the duration of the store.
    #[inline]
    pub unsafe fn set(&self, v: T) {
        self.note(true);
        *self.cell.get() = v;
    }

    /// Unwrap the inner value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

impl<T: Copy> Tracked<T> {
    /// Copy the value out.
    ///
    /// # Safety
    /// No concurrent writer.
    #[inline]
    pub unsafe fn read(&self) -> T {
        self.note(false);
        *self.cell.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static HITS: AtomicUsize = AtomicUsize::new(0);

    struct CountingSink;
    impl AccessSink for CountingSink {
        fn access(&self, _team: TeamId, _tid: usize, _ev: &AccessEvent) {
            HITS.fetch_add(1, Ordering::SeqCst);
        }
    }

    // One test, not several: arming is process-global, and parallel test
    // threads observing each other's arm window would flake.
    #[test]
    fn arm_cycle_gates_reports_and_requires_team_context() {
        static SINK_IMPL: CountingSink = CountingSink;
        let cell = Tracked::new("flag", 0u32);
        // Unarmed: accesses are plain memory operations.
        unsafe {
            cell.set(1);
            assert_eq!(cell.read(), 1);
        }
        assert_eq!(HITS.load(Ordering::SeqCst), 0);
        arm(&SINK_IMPL);
        // Outside any team: gate is hot but the report is dropped (no
        // team context to attribute the access to).
        unsafe { cell.set(7) };
        assert_eq!(HITS.load(Ordering::SeqCst), 0);
        assert!(armed());
        crate::region::parallel_with(crate::region::RegionConfig::new().threads(1), || unsafe {
            cell.set(9);
            let _ = cell.read();
        });
        disarm();
        assert_eq!(HITS.load(Ordering::SeqCst), 2);
        assert!(!armed());
        assert_eq!(cell.into_inner(), 9);
    }
}
