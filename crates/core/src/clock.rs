//! Monotonic time source for the stall watchdog, virtualisable in tests.
//!
//! Production code paths read wall-clock time. A test that wants to
//! exercise watchdog *logic* without waiting out (or flaking on) real
//! deadlines installs a [`VirtualClock`]: watchdogs armed while it is
//! held run on a process-global virtual counter that their own polls
//! advance, so a 300 ms stall deadline elapses in microseconds of real
//! time — and the test's outcome no longer depends on scheduler jitter
//! (EXPERIMENTS.md documents ~2× timing noise on 1-core CI runners).
//!
//! Two design rules keep concurrent tests sound:
//!
//! * **Mode is pinned at arm time.** A watchdog samples [`mode`] once
//!   when it spawns and never mixes time bases: watchdogs armed outside
//!   a virtual window are completely immune to one opening later.
//! * **Virtual time never goes backwards.** The counter is only ever
//!   advanced, never reset, so a virtual-mode watchdog that outlives its
//!   window still sees monotonic time (its deltas just stop racing).
//!
//! Scope: only the watchdog's notion of "how long since the team last
//! made progress" is virtualised. Bounded parks inside blocking
//! primitives stay real — they are liveness backstops, not measured
//! durations, and virtualising them would change scheduling behaviour.
//!
//! The clock stays process-global even though most other runtime state
//! moved onto [`Runtime`](crate::Runtime) instances: it is a test-only
//! guard (one virtual window at a time, enforced by [`SERIAL`]), and
//! watchdogs are per-region with their time base pinned at arm time, so
//! regions from different runtimes never mix bases within one window.

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

static VIRTUAL: AtomicBool = AtomicBool::new(false);
/// Virtual nanoseconds. Monotone: advanced, never reset.
static VNOW: AtomicU64 = AtomicU64::new(0);
/// Only one virtual-clock window at a time: the clock is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The time base a watchdog runs on, sampled once when it arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClockMode {
    /// Wall-clock time (production).
    Real,
    /// The test-controlled virtual counter.
    Virtual,
}

impl ClockMode {
    /// Monotonic now on this base. Absolute values are meaningless across
    /// bases; callers only compare readings taken on the same mode.
    pub(crate) fn now(self) -> Duration {
        match self {
            ClockMode::Real => epoch().elapsed(),
            ClockMode::Virtual => Duration::from_nanos(VNOW.load(Ordering::Acquire)),
        }
    }

    /// Watchdog poll sleep. Real mode really sleeps. Virtual mode
    /// advances the counter by the requested duration (the watchdog is
    /// its own pacemaker) and yields a sliver of real time so the poll
    /// loop cannot monopolise a core between the state changes it polls.
    pub(crate) fn sleep(self, d: Duration) {
        match self {
            ClockMode::Real => std::thread::sleep(d),
            ClockMode::Virtual => {
                VNOW.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// The mode a watchdog arming right now should run on.
pub(crate) fn mode() -> ClockMode {
    if VIRTUAL.load(Ordering::Acquire) {
        ClockMode::Virtual
    } else {
        ClockMode::Real
    }
}

/// Guard that virtualises the watchdog clock for its lifetime.
/// Test-only by intent. Serialises: a second `install` blocks until the
/// first guard drops, because the clock is process-global.
pub struct VirtualClock {
    _serial: MutexGuard<'static, ()>,
}

impl VirtualClock {
    /// Open a virtual-clock window: watchdogs armed until the guard
    /// drops pace themselves on virtual time.
    pub fn install() -> Self {
        let serial = SERIAL.lock();
        VIRTUAL.store(true, Ordering::Release);
        Self { _serial: serial }
    }

    /// Advance virtual time by `d` (on top of the watchdogs'
    /// self-advancing polls).
    pub fn advance(&self, d: Duration) {
        VNOW.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
    }

    /// The current virtual counter. Only deltas between readings are
    /// meaningful (the counter is shared and never reset).
    pub fn now(&self) -> Duration {
        Duration::from_nanos(VNOW.load(Ordering::Acquire))
    }
}

impl Drop for VirtualClock {
    fn drop(&mut self) {
        VIRTUAL.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_sleeps_advance_without_real_time() {
        let started = Instant::now();
        let clock = VirtualClock::install();
        assert_eq!(mode(), ClockMode::Virtual);
        let before = clock.now();
        ClockMode::Virtual.sleep(Duration::from_secs(5));
        clock.advance(Duration::from_secs(5));
        assert!(clock.now() - before >= Duration::from_secs(10));
        assert!(started.elapsed() < Duration::from_secs(2));
        drop(clock);
        assert_eq!(mode(), ClockMode::Real);
    }

    #[test]
    fn real_mode_tracks_wall_clock() {
        let a = ClockMode::Real.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(ClockMode::Real.now() > a);
    }
}
