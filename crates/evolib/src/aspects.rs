//! The parallelism modules of the framework — developed independently of
//! the algorithms, exactly as the paper's JECoLi case study advertises
//! ("enabling the independent development of parallelism modules").
//!
//! A single aspect covers *every* metaheuristic in the framework through
//! interface-style glob pointcuts: any algorithm exposing an
//! `Evolib.<Algo>.evaluate` for method gets a parallel region plus
//! dynamic work-sharing; any `Evolib.<Algo>.climb` gets a cyclic one.

use aomp::schedule::Schedule;
use aomp_weaver::{AspectModule, Mechanism, Pointcut};

/// Shared evaluation helpers used by every algorithm module.
pub(crate) mod eval {
    use crate::problem::Problem;
    use crate::Individual;
    use aomp::cell::SyncSlice;
    use aomp::range::LoopRange;

    /// Evaluate the population's fitness through the framework's
    /// `Evolib.<tag>.evaluate` join point. Each index is written by
    /// exactly one thread (schedule-owned), so the shared access is
    /// race-free by construction.
    pub fn evaluate_population(tag: &str, problem: &dyn Problem, pop: &mut [Individual]) -> usize {
        let n = pop.len();
        let s = SyncSlice::new(pop);
        let name = format!("Evolib.{tag}.evaluate");
        aomp_weaver::call_for(&name, LoopRange::upto(0, n as i64), |lo, hi, step| {
            let mut i = lo;
            while i < hi {
                // SAFETY: index i is owned by this thread per schedule.
                let ind = unsafe { s.get_mut(i as usize) };
                ind.fitness = problem.evaluate(&ind.genes);
                i += step;
            }
        });
        n
    }
}

/// The framework-wide parallelisation module: deploy it and every
/// algorithm in the crate runs its expensive phases on a team of
/// `threads`; undeploy it and everything is sequential again.
pub fn parallel_evaluation_aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelEvolib")
        // Fitness evaluation: a combined parallel + dynamic for (fitness
        // costs can vary per individual, e.g. penalty branches).
        .bind(
            Pointcut::glob("Evolib.*.evaluate"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::glob("Evolib.*.evaluate"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 4 }),
        )
        // Multi-start local search: one start per slot, cyclic.
        .bind(
            Pointcut::glob("Evolib.*.climb"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::glob("Evolib.*.climb"),
            Mechanism::for_loop(Schedule::StaticCyclic),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sphere};
    use crate::Individual;

    #[test]
    fn evaluate_population_fills_fitness_sequentially() {
        let p = Sphere { dims: 3 };
        let mut pop: Vec<Individual> = (0..10)
            .map(|i| Individual::new(vec![i as f64 * 0.1; 3]))
            .collect();
        eval::evaluate_population("Test", &p, &mut pop);
        for ind in &pop {
            assert_eq!(ind.fitness, p.evaluate(&ind.genes));
        }
    }

    #[test]
    fn aspect_parallelises_evaluation_without_changing_results() {
        let p = Sphere { dims: 4 };
        let make = || -> Vec<Individual> {
            (0..50)
                .map(|i| Individual::new(vec![(i as f64).sin(); 4]))
                .collect()
        };
        let mut seq = make();
        eval::evaluate_population("AspectTest", &p, &mut seq);
        let mut par = make();
        aomp_weaver::Weaver::global().with_deployed(parallel_evaluation_aspect(4), || {
            eval::evaluate_population("AspectTest", &p, &mut par);
        });
        assert_eq!(seq, par);
    }
}
