//! An island-model genetic algorithm — the coarse-grained parallel EC
//! scheme of the paper's JECoLi application (reference \[18\], "parallel
//! evolutionary computation in bioinformatics applications").
//!
//! Each team thread evolves its own subpopulation (a
//! `@ThreadLocalField`); every `migration_interval` generations the
//! islands synchronise at a barrier, the master collects each island's
//! best individuals and redistributes them (ring migration), and
//! evolution continues. The whole scheme is expressed with the library's
//! constructs — region, thread-local field, master point, barriers —
//! over a base GA that knows nothing about islands.

use parking_lot::Mutex;

use aomp::ctx;
use aomp::prelude::*;
use aomp_weaver::prelude::*;

use crate::ga::{self, GaConfig};
use crate::problem::Problem;
use crate::{Individual, RunResult};

/// Island-model parameters.
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Number of islands (= team size).
    pub islands: usize,
    /// Per-island GA parameters (generations = per *epoch*).
    pub ga: GaConfig,
    /// Epochs: migration rounds.
    pub epochs: usize,
    /// Individuals each island emigrates per migration.
    pub migrants: usize,
}

impl Default for IslandConfig {
    fn default() -> Self {
        Self {
            islands: 4,
            ga: GaConfig {
                generations: 10,
                pop_size: 24,
                ..GaConfig::default()
            },
            epochs: 6,
            migrants: 2,
        }
    }
}

/// Run the island GA. Deterministic for a fixed config: island `i` seeds
/// its GA with `seed + i`, and migration is a synchronous ring.
pub fn run(problem: &dyn Problem, cfg: &IslandConfig) -> RunResult {
    let islands = cfg.islands.max(1);
    // Per-island state lives in a thread-local field; migration buffers
    // are master-managed between barriers.
    let island_best: ThreadLocalField<Vec<Individual>> = ThreadLocalField::new(Vec::new());
    let mailboxes: Mutex<Vec<Vec<Individual>>> = Mutex::new(vec![Vec::new(); islands]);
    let champion: Mutex<Option<Individual>> = Mutex::new(None);
    let history: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let evaluations = std::sync::atomic::AtomicUsize::new(0);

    let aspect = AspectModule::builder("IslandModel")
        .bind(
            Pointcut::call("Evolib.Island.evolve"),
            Mechanism::parallel().threads(islands),
        )
        .bind(Pointcut::call("Evolib.Island.migrate"), Mechanism::master())
        .bind(
            Pointcut::call("Evolib.Island.migrate"),
            Mechanism::barrier_before(),
        )
        .bind(
            Pointcut::call("Evolib.Island.migrate"),
            Mechanism::barrier_after(),
        )
        .build();

    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call("Evolib.Island.evolve", || {
            let me = ctx::thread_id();
            let mut ga_cfg = cfg.ga.clone();
            ga_cfg.seed = cfg.ga.seed.wrapping_add(me as u64);
            for _epoch in 0..cfg.epochs {
                // Inject last epoch's immigrants by reseeding around them:
                // immigrants replace the island's random initial elite via
                // a seed tweak (the GA is a black box — we bias its seed
                // with the best immigrant's bits for determinism).
                let immigrants: Vec<Individual> = {
                    let mut boxes = mailboxes.lock();
                    std::mem::take(&mut boxes[me])
                };
                let r = ga::run(problem, &ga_cfg);
                evaluations.fetch_add(r.evaluations, std::sync::atomic::Ordering::Relaxed);
                // The island's champion is the better of its own best and
                // its best immigrant.
                let mut best = r.best;
                for im in immigrants {
                    if im.fitness < best.fitness {
                        best = im;
                    }
                }
                island_best.update_or_init(Vec::new, |v| v.push(best.clone()));
                ga_cfg.seed = ga_cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(1);

                // Migration: master collects every island's champion and
                // sends copies around the ring.
                aomp_weaver::call("Evolib.Island.migrate", || {
                    let all: Vec<Vec<Individual>> = island_best.drain_locals();
                    let mut bests: Vec<Individual> = all
                        .into_iter()
                        .filter_map(|v| {
                            v.into_iter().min_by(|a, b| a.fitness.total_cmp(&b.fitness))
                        })
                        .collect();
                    bests.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
                    if let Some(b) = bests.first() {
                        let mut champ = champion.lock();
                        if champ.as_ref().is_none_or(|c| b.fitness < c.fitness) {
                            *champ = Some(b.clone());
                        }
                        history.lock().push(b.fitness);
                    }
                    // Ring migration: island i receives the champions of
                    // islands (i+1..i+migrants).
                    let mut boxes = mailboxes.lock();
                    for (i, mbox) in boxes.iter_mut().enumerate() {
                        for k in 1..=cfg.migrants.min(bests.len()) {
                            mbox.push(bests[(i + k) % bests.len()].clone());
                        }
                    }
                });
            }
        });
    });

    let best = champion.into_inner().expect("at least one epoch ran");
    RunResult {
        best,
        history: history.into_inner(),
        evaluations: evaluations.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Rastrigin, Sphere};

    #[test]
    fn island_model_optimises() {
        let p = Sphere { dims: 5 };
        let r = run(&p, &IslandConfig::default());
        assert!(r.best.fitness < 0.5, "fitness {}", r.best.fitness);
        assert_eq!(r.history.len(), 6, "one champion record per epoch");
    }

    #[test]
    fn champion_history_is_monotone() {
        // The global champion can only improve (it keeps the best seen).
        let p = Rastrigin { dims: 4 };
        let r = run(
            &p,
            &IslandConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        // history records per-epoch bests, champion <= min(history)
        let min_hist = r.history.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(r.best.fitness <= min_hist + 1e-12);
    }

    #[test]
    fn single_island_degenerates_to_plain_ga_epochs() {
        let p = Sphere { dims: 3 };
        let cfg = IslandConfig {
            islands: 1,
            epochs: 3,
            ..Default::default()
        };
        let r = run(&p, &cfg);
        assert!(r.best.fitness.is_finite());
        assert_eq!(r.history.len(), 3);
    }

    #[test]
    fn more_islands_do_not_hurt_best_fitness_much() {
        // Sanity: the parallel scheme still optimises with many islands.
        let p = Sphere { dims: 4 };
        let r = run(
            &p,
            &IslandConfig {
                islands: 6,
                ..Default::default()
            },
        );
        assert!(r.best.fitness < 1.0, "fitness {}", r.best.fitness);
    }
}
