//! # aomp-evolib — a JECoLi-style metaheuristic framework over AOmp
//!
//! The AOmpLib paper closes by reporting that "the library is being
//! successfully applied to many Java frameworks, enabling the independent
//! development of parallelism modules. One of such cases is the JECoLi
//! (Java Evolutionary Computation Library) that implements the main
//! metaheuristic optimisation algorithms" (§VII). This crate rebuilds
//! that case study in Rust: a small but real evolutionary-computation
//! framework whose *base code contains no parallelism at all* — the
//! expensive phases are exposed as join points, and a single aspect
//! module parallelises every algorithm in the framework at once via an
//! interface-style glob pointcut (`Evolib.*.evaluate`).
//!
//! Implemented metaheuristics:
//! * [`ga`] — a generational genetic algorithm (tournament selection,
//!   one-point/arithmetic crossover, gaussian mutation, elitism);
//! * [`de`] — differential evolution (DE/rand/1/bin);
//! * [`hill`] — parallel multi-start hill climbing;
//! * [`island`] — a coarse-grained island-model GA (the parallel-EC
//!   scheme of the paper's JECoLi reference \[18\]), built from region +
//!   thread-local field + master/barrier constructs.
//!
//! All randomness is counter-seeded per (generation, individual), so a
//! run is bit-identical regardless of thread count or schedule — which
//! the tests exploit to prove the aspect changes *performance structure*,
//! never *results*.

#![warn(missing_docs)]

pub mod aspects;
pub mod de;
pub mod ga;
pub mod hill;
pub mod island;
pub mod problem;

pub use aspects::parallel_evaluation_aspect;
pub use problem::{Knapsack, Problem, Rastrigin, Rosenbrock, Sphere};

/// A candidate solution: a real-valued genome plus its fitness.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Genome.
    pub genes: Vec<f64>,
    /// Fitness (lower is better; `f64::INFINITY` = unevaluated).
    pub fitness: f64,
}

impl Individual {
    /// Unevaluated individual with the given genome.
    pub fn new(genes: Vec<f64>) -> Self {
        Self {
            genes,
            fitness: f64::INFINITY,
        }
    }
}

/// Outcome of an optimisation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best individual found.
    pub best: Individual,
    /// Best fitness per generation (convergence curve).
    pub history: Vec<f64>,
    /// Fitness evaluations performed.
    pub evaluations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn individual_starts_unevaluated() {
        let ind = Individual::new(vec![1.0, 2.0]);
        assert!(ind.fitness.is_infinite());
    }
}
