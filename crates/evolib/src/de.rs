//! Differential evolution (DE/rand/1/bin) — a second metaheuristic
//! reusing the same framework join points, so the one deployed aspect
//! parallelises it too (interface-style reuse, paper §II/§VII).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aspects::eval::evaluate_population;
use crate::problem::Problem;
use crate::{Individual, RunResult};

/// DE parameters.
#[derive(Debug, Clone)]
pub struct DeConfig {
    /// Population size (≥ 4 for rand/1).
    pub pop_size: usize,
    /// Generations.
    pub generations: usize,
    /// Differential weight F.
    pub f: f64,
    /// Crossover probability CR.
    pub cr: f64,
    /// Run seed.
    pub seed: u64,
}

impl Default for DeConfig {
    fn default() -> Self {
        Self {
            pop_size: 40,
            generations: 100,
            f: 0.7,
            cr: 0.9,
            seed: 0xdeed,
        }
    }
}

fn rng_for(seed: u64, generation: usize, slot: usize) -> StdRng {
    let mut z = seed
        ^ (generation as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ (slot as u64).wrapping_mul(0xA5A5_1C69_845C_2B2B);
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    StdRng::seed_from_u64(z ^ (z >> 29))
}

/// Run DE on `problem`.
pub fn run(problem: &dyn Problem, cfg: &DeConfig) -> RunResult {
    assert!(cfg.pop_size >= 4, "DE/rand/1 needs at least 4 individuals");
    let (lo, hi) = problem.bounds();
    let dims = problem.dims();
    let mut rng = rng_for(cfg.seed, 0, usize::MAX);
    let mut pop: Vec<Individual> = (0..cfg.pop_size)
        .map(|_| Individual::new((0..dims).map(|_| rng.gen_range(lo..hi)).collect()))
        .collect();
    let mut evaluations = evaluate_population("DE", problem, &mut pop);
    let mut history = vec![best_of(&pop)];

    for generation in 1..=cfg.generations {
        // Build all trial vectors (sequential domain logic)...
        let mut trials: Vec<Individual> = Vec::with_capacity(cfg.pop_size);
        for i in 0..cfg.pop_size {
            let mut rng = rng_for(cfg.seed, generation, i);
            let (a, b, c) = distinct_three(cfg.pop_size, i, &mut rng);
            let jrand = rng.gen_range(0..dims);
            let genes: Vec<f64> = (0..dims)
                .map(|j| {
                    if j == jrand || rng.gen_bool(cfg.cr) {
                        (pop[a].genes[j] + cfg.f * (pop[b].genes[j] - pop[c].genes[j]))
                            .clamp(lo, hi)
                    } else {
                        pop[i].genes[j]
                    }
                })
                .collect();
            trials.push(Individual::new(genes));
        }
        // ...evaluate them through the woven join point...
        evaluations += evaluate_population("DE", problem, &mut trials);
        // ...and select.
        for (target, trial) in pop.iter_mut().zip(trials) {
            if trial.fitness <= target.fitness {
                *target = trial;
            }
        }
        history.push(best_of(&pop));
    }
    let best_idx = (0..pop.len())
        .min_by(|&a, &b| pop[a].fitness.total_cmp(&pop[b].fitness))
        .unwrap();
    RunResult {
        best: pop.swap_remove(best_idx),
        history,
        evaluations,
    }
}

fn best_of(pop: &[Individual]) -> f64 {
    pop.iter().map(|i| i.fitness).fold(f64::INFINITY, f64::min)
}

fn distinct_three(n: usize, exclude: usize, rng: &mut StdRng) -> (usize, usize, usize) {
    let mut pick = || loop {
        let v = rng.gen_range(0..n);
        if v != exclude {
            return v;
        }
    };
    let a = pick();
    let b = loop {
        let v = pick();
        if v != a {
            break v;
        }
    };
    let c = loop {
        let v = pick();
        if v != a && v != b {
            break v;
        }
    };
    (a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_evaluation_aspect;
    use crate::problem::{Rosenbrock, Sphere};

    #[test]
    fn de_optimises_sphere() {
        let p = Sphere { dims: 6 };
        let r = run(&p, &DeConfig::default());
        assert!(r.best.fitness < 0.1, "fitness {}", r.best.fitness);
    }

    #[test]
    fn de_improves_rosenbrock() {
        let p = Rosenbrock { dims: 4 };
        let r = run(
            &p,
            &DeConfig {
                generations: 150,
                ..DeConfig::default()
            },
        );
        assert!(*r.history.last().unwrap() < r.history[0] * 0.1);
    }

    #[test]
    fn de_selection_never_regresses() {
        let p = Sphere { dims: 3 };
        let r = run(
            &p,
            &DeConfig {
                generations: 30,
                ..DeConfig::default()
            },
        );
        assert!(r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn de_parallel_and_sequential_runs_are_bit_identical() {
        let p = Sphere { dims: 4 };
        let cfg = DeConfig {
            generations: 25,
            ..DeConfig::default()
        };
        let seq = run(&p, &cfg);
        let par = aomp_weaver::Weaver::global()
            .with_deployed(parallel_evaluation_aspect(3), || run(&p, &cfg));
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.history, par.history);
    }

    #[test]
    fn distinct_three_never_collides() {
        let mut rng = rng_for(1, 2, 3);
        for _ in 0..200 {
            let (a, b, c) = distinct_three(6, 2, &mut rng);
            assert!(a != 2 && b != 2 && c != 2);
            assert!(a != b && b != c && a != c);
        }
    }
}
