//! Parallel multi-start hill climbing: independent local searches from
//! random starts, exposed through the `Evolib.Hill.climb` for method (one
//! iteration per start), which the framework aspect parallelises with a
//! cyclic schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aomp::cell::SyncSlice;
use aomp::range::LoopRange;

use crate::problem::Problem;
use crate::{Individual, RunResult};

/// Hill-climbing parameters.
#[derive(Debug, Clone)]
pub struct HillConfig {
    /// Independent restarts.
    pub starts: usize,
    /// Local-search steps per start.
    pub steps: usize,
    /// Perturbation scale.
    pub sigma: f64,
    /// Run seed.
    pub seed: u64,
}

impl Default for HillConfig {
    fn default() -> Self {
        Self {
            starts: 16,
            steps: 400,
            sigma: 0.2,
            seed: 0x411c,
        }
    }
}

fn rng_for(seed: u64, start: usize) -> StdRng {
    let mut z = seed ^ (start as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(z)
}

fn climb_one(problem: &dyn Problem, cfg: &HillConfig, start: usize) -> Individual {
    let (lo, hi) = problem.bounds();
    let mut rng = rng_for(cfg.seed, start);
    let mut genes: Vec<f64> = (0..problem.dims()).map(|_| rng.gen_range(lo..hi)).collect();
    let mut fitness = problem.evaluate(&genes);
    for _ in 0..cfg.steps {
        let mut cand = genes.clone();
        let idx = rng.gen_range(0..cand.len());
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        cand[idx] = (cand[idx] + z * cfg.sigma).clamp(lo, hi);
        let f = problem.evaluate(&cand);
        if f < fitness {
            genes = cand;
            fitness = f;
        }
    }
    Individual { genes, fitness }
}

/// Run multi-start hill climbing; each start is one iteration of the
/// `Evolib.Hill.climb` for method.
pub fn run(problem: &dyn Problem, cfg: &HillConfig) -> RunResult {
    let mut results: Vec<Option<Individual>> = vec![None; cfg.starts];
    {
        let slots = SyncSlice::new(&mut results);
        aomp_weaver::call_for(
            "Evolib.Hill.climb",
            LoopRange::upto(0, cfg.starts as i64),
            |lo, hi, step| {
                let mut s = lo;
                while s < hi {
                    // SAFETY: slot s is owned by this thread per schedule.
                    unsafe { slots.set(s as usize, Some(climb_one(problem, cfg, s as usize))) };
                    s += step;
                }
            },
        );
    }
    let all: Vec<Individual> = results
        .into_iter()
        .map(|r| r.expect("every start ran"))
        .collect();
    let history: Vec<f64> = all.iter().map(|i| i.fitness).collect();
    let best = all
        .into_iter()
        .min_by(|a, b| a.fitness.total_cmp(&b.fitness))
        .expect("starts >= 1");
    RunResult {
        best,
        history,
        evaluations: cfg.starts * (cfg.steps + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_evaluation_aspect;
    use crate::problem::Sphere;

    #[test]
    fn hill_climbing_descends() {
        let p = Sphere { dims: 4 };
        let r = run(&p, &HillConfig::default());
        assert!(r.best.fitness < 0.5, "fitness {}", r.best.fitness);
        assert_eq!(r.history.len(), 16);
    }

    #[test]
    fn hill_parallel_matches_sequential() {
        let p = Sphere { dims: 3 };
        let cfg = HillConfig {
            starts: 8,
            steps: 100,
            ..HillConfig::default()
        };
        let seq = run(&p, &cfg);
        let par = aomp_weaver::Weaver::global()
            .with_deployed(parallel_evaluation_aspect(4), || run(&p, &cfg));
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.history, par.history);
    }

    #[test]
    fn starts_are_independent_and_deterministic() {
        let p = Sphere { dims: 2 };
        let cfg = HillConfig {
            starts: 4,
            steps: 50,
            ..HillConfig::default()
        };
        let a = run(&p, &cfg);
        let b = run(&p, &cfg);
        assert_eq!(a.history, b.history);
    }
}
