//! Optimisation problems: classic continuous test functions plus a
//! discrete knapsack (JECoLi's domains include both).

/// A minimisation problem over a real-valued genome.
pub trait Problem: Send + Sync {
    /// Problem name (diagnostics).
    fn name(&self) -> &str;
    /// Genome length.
    fn dims(&self) -> usize;
    /// Search-space bounds, applied per gene.
    fn bounds(&self) -> (f64, f64);
    /// Fitness (lower is better).
    fn evaluate(&self, genes: &[f64]) -> f64;
    /// The known global optimum value, for tests.
    fn optimum(&self) -> f64 {
        0.0
    }
}

/// Sphere function Σx² — unimodal, trivially smooth.
#[derive(Debug, Clone)]
pub struct Sphere {
    /// Dimensions.
    pub dims: usize,
}

impl Problem for Sphere {
    fn name(&self) -> &str {
        "sphere"
    }
    fn dims(&self) -> usize {
        self.dims
    }
    fn bounds(&self) -> (f64, f64) {
        (-5.12, 5.12)
    }
    fn evaluate(&self, genes: &[f64]) -> f64 {
        genes.iter().map(|x| x * x).sum()
    }
}

/// Rastrigin function — highly multimodal.
#[derive(Debug, Clone)]
pub struct Rastrigin {
    /// Dimensions.
    pub dims: usize,
}

impl Problem for Rastrigin {
    fn name(&self) -> &str {
        "rastrigin"
    }
    fn dims(&self) -> usize {
        self.dims
    }
    fn bounds(&self) -> (f64, f64) {
        (-5.12, 5.12)
    }
    fn evaluate(&self, genes: &[f64]) -> f64 {
        let a = 10.0;
        a * genes.len() as f64
            + genes
                .iter()
                .map(|x| x * x - a * (2.0 * std::f64::consts::PI * x).cos())
                .sum::<f64>()
    }
}

/// Rosenbrock valley — ill-conditioned, optimum at (1, …, 1).
#[derive(Debug, Clone)]
pub struct Rosenbrock {
    /// Dimensions.
    pub dims: usize,
}

impl Problem for Rosenbrock {
    fn name(&self) -> &str {
        "rosenbrock"
    }
    fn dims(&self) -> usize {
        self.dims
    }
    fn bounds(&self) -> (f64, f64) {
        (-2.048, 2.048)
    }
    fn evaluate(&self, genes: &[f64]) -> f64 {
        genes
            .windows(2)
            .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
            .sum()
    }
}

/// 0/1 knapsack encoded on a real genome (gene > 0.5 = take the item);
/// fitness is negated value with an over-capacity penalty.
#[derive(Debug, Clone)]
pub struct Knapsack {
    /// Item values.
    pub values: Vec<f64>,
    /// Item weights.
    pub weights: Vec<f64>,
    /// Capacity.
    pub capacity: f64,
}

impl Knapsack {
    /// A deterministic instance with `n` items.
    pub fn instance(n: usize) -> Knapsack {
        let values = (0..n)
            .map(|i| ((i * 37 + 11) % 50 + 1) as f64)
            .collect::<Vec<_>>();
        let weights = (0..n)
            .map(|i| ((i * 53 + 7) % 40 + 1) as f64)
            .collect::<Vec<_>>();
        let capacity = weights.iter().sum::<f64>() * 0.4;
        Knapsack {
            values,
            weights,
            capacity,
        }
    }
}

impl Problem for Knapsack {
    fn name(&self) -> &str {
        "knapsack"
    }
    fn dims(&self) -> usize {
        self.values.len()
    }
    fn bounds(&self) -> (f64, f64) {
        (0.0, 1.0)
    }
    fn evaluate(&self, genes: &[f64]) -> f64 {
        let mut value = 0.0;
        let mut weight = 0.0;
        for (i, g) in genes.iter().enumerate() {
            if *g > 0.5 {
                value += self.values[i];
                weight += self.weights[i];
            }
        }
        let penalty = if weight > self.capacity {
            (weight - self.capacity) * 100.0
        } else {
            0.0
        };
        -(value) + penalty
    }
    fn optimum(&self) -> f64 {
        f64::NEG_INFINITY // unknown in general; tests only check improvement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_optimum_at_origin() {
        let p = Sphere { dims: 4 };
        assert_eq!(p.evaluate(&[0.0; 4]), 0.0);
        assert!(p.evaluate(&[1.0; 4]) > 0.0);
    }

    #[test]
    fn rastrigin_optimum_at_origin() {
        let p = Rastrigin { dims: 3 };
        assert!(p.evaluate(&[0.0; 3]).abs() < 1e-9);
        assert!(p.evaluate(&[0.5; 3]) > 1.0);
    }

    #[test]
    fn rosenbrock_optimum_at_ones() {
        let p = Rosenbrock { dims: 5 };
        assert!(p.evaluate(&[1.0; 5]).abs() < 1e-12);
        assert!(p.evaluate(&[0.0; 5]) > 1.0);
    }

    #[test]
    fn knapsack_rewards_value_penalises_overweight() {
        let k = Knapsack::instance(10);
        let none = k.evaluate(&vec![0.0; 10]);
        let all = k.evaluate(&vec![1.0; 10]);
        assert_eq!(none, 0.0);
        assert!(all > none, "taking everything busts the capacity");
    }
}
