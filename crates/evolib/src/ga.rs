//! A generational genetic algorithm — the core JECoLi-style
//! metaheuristic. The base code is purely sequential domain logic;
//! fitness evaluation goes through the `Evolib.GA.evaluate` join point
//! that [`crate::parallel_evaluation_aspect`] can weave.
//!
//! All randomness is counter-seeded per (run seed, generation, slot), so
//! results are bit-identical under any team size or schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aspects::eval::evaluate_population;
use crate::problem::Problem;
use crate::{Individual, RunResult};

/// GA parameters.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Population size.
    pub pop_size: usize,
    /// Generations to run.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Probability of crossover per child.
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Gaussian mutation step.
    pub mutation_sigma: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// Run seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            pop_size: 60,
            generations: 80,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.1,
            mutation_sigma: 0.3,
            elitism: 2,
            seed: 0xec0_11b5,
        }
    }
}

fn rng_for(seed: u64, generation: usize, slot: usize) -> StdRng {
    // splitmix-style counter seeding: deterministic per (gen, slot).
    let mut z = seed
        ^ (generation as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (slot as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

fn random_individual(problem: &dyn Problem, rng: &mut StdRng) -> Individual {
    let (lo, hi) = problem.bounds();
    Individual::new((0..problem.dims()).map(|_| rng.gen_range(lo..hi)).collect())
}

fn tournament_select<'a>(pop: &'a [Individual], k: usize, rng: &mut StdRng) -> &'a Individual {
    let mut best = &pop[rng.gen_range(0..pop.len())];
    for _ in 1..k {
        let c = &pop[rng.gen_range(0..pop.len())];
        if c.fitness < best.fitness {
            best = c;
        }
    }
    best
}

fn crossover(a: &[f64], b: &[f64], rng: &mut StdRng) -> Vec<f64> {
    if rng.gen_bool(0.5) {
        // One-point.
        let cut = rng.gen_range(0..a.len());
        a[..cut].iter().chain(b[cut..].iter()).copied().collect()
    } else {
        // Arithmetic blend.
        let w: f64 = rng.gen_range(0.0..1.0);
        a.iter()
            .zip(b)
            .map(|(x, y)| w * x + (1.0 - w) * y)
            .collect()
    }
}

fn mutate(genes: &mut [f64], cfg: &GaConfig, bounds: (f64, f64), rng: &mut StdRng) {
    for g in genes.iter_mut() {
        if rng.gen_bool(cfg.mutation_rate) {
            // Box–Muller gaussian step.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *g = (*g + z * cfg.mutation_sigma).clamp(bounds.0, bounds.1);
        }
    }
}

/// Run the GA on `problem`.
pub fn run(problem: &dyn Problem, cfg: &GaConfig) -> RunResult {
    assert!(cfg.pop_size > cfg.elitism && cfg.pop_size >= 2);
    let mut rng = rng_for(cfg.seed, 0, usize::MAX);
    let mut pop: Vec<Individual> = (0..cfg.pop_size)
        .map(|_| random_individual(problem, &mut rng))
        .collect();
    let mut evaluations = evaluate_population("GA", problem, &mut pop);
    pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    let mut history = vec![pop[0].fitness];

    for generation in 1..=cfg.generations {
        let mut next: Vec<Individual> = pop[..cfg.elitism].to_vec();
        for slot in cfg.elitism..cfg.pop_size {
            let mut rng = rng_for(cfg.seed, generation, slot);
            let parent_a = tournament_select(&pop, cfg.tournament, &mut rng);
            let mut genes = if rng.gen_bool(cfg.crossover_rate) {
                let parent_b = tournament_select(&pop, cfg.tournament, &mut rng);
                crossover(&parent_a.genes, &parent_b.genes, &mut rng)
            } else {
                parent_a.genes.clone()
            };
            mutate(&mut genes, cfg, problem.bounds(), &mut rng);
            next.push(Individual::new(genes));
        }
        evaluations += evaluate_population("GA", problem, &mut next[cfg.elitism..]);
        pop = next;
        pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        history.push(pop[0].fitness);
    }
    RunResult {
        best: pop.swap_remove(0),
        history,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_evaluation_aspect;
    use crate::problem::{Rastrigin, Sphere};

    #[test]
    fn ga_optimises_sphere() {
        let p = Sphere { dims: 6 };
        let r = run(&p, &GaConfig::default());
        assert!(r.best.fitness < 0.5, "fitness {}", r.best.fitness);
        assert!(
            r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "elitism => monotone history"
        );
    }

    #[test]
    fn ga_improves_rastrigin() {
        let p = Rastrigin { dims: 4 };
        let r = run(&p, &GaConfig::default());
        assert!(
            r.best.fitness < r.history[0],
            "must improve over the random init"
        );
    }

    #[test]
    fn ga_parallel_and_sequential_runs_are_bit_identical() {
        let p = Sphere { dims: 5 };
        let cfg = GaConfig {
            generations: 20,
            ..GaConfig::default()
        };
        let seq = run(&p, &cfg);
        let par = aomp_weaver::Weaver::global()
            .with_deployed(parallel_evaluation_aspect(4), || run(&p, &cfg));
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.history, par.history);
        assert_eq!(seq.evaluations, par.evaluations);
    }

    #[test]
    fn evaluation_count_is_exact() {
        let p = Sphere { dims: 2 };
        let cfg = GaConfig {
            pop_size: 10,
            generations: 5,
            elitism: 2,
            ..GaConfig::default()
        };
        let r = run(&p, &cfg);
        assert_eq!(r.evaluations, 10 + 5 * 8);
    }
}
