//! AOmpLib-style Crypt: the base program refactored into a run method
//! (M2M) and a for method (M2FOR), composed with a pointcut-style aspect
//! binding `@Parallel` to the run method and a block-scheduled `@For` to
//! the for method — paper Table 2's `PR, FOR (block)`.
//!
//! Both cipher phases use the same static-block schedule, so each thread
//! decrypts exactly the blocks it encrypted and no barrier is required —
//! matching the paper's Crypt row, which lists no `BR`.

use aomp::prelude::*;
use aomp_weaver::prelude::*;

use super::idea::{cipher_block, BLOCK, KEY_WORDS};
use super::{CryptData, CryptResult};
use crate::shared::SyncSlice;

/// The rewritten original method of paper Figure 12 (`original_*`):
/// the cipher loop as its own non-inlined function so its code
/// generation is independent of the weaving shim.
#[inline(never)]
fn original_cipher_idea(
    lo: i64,
    hi: i64,
    st: i64,
    input: &SyncSlice<'_, u8>,
    output: &SyncSlice<'_, u8>,
    key: &[u16; KEY_WORDS],
) {
    debug_assert_eq!(st % BLOCK as i64, 0, "block-aligned stride");
    if st == BLOCK as i64 {
        // Contiguous chunk: borrow it as plain slices so the inner loop
        // is identical to the hand-threaded version.
        // SAFETY: the schedule owns [lo, hi) on this thread; the input
        // bytes were written before the phase or by this thread (encrypt
        // phase of the same schedule).
        let len = (hi - lo) as usize;
        let inp = unsafe { input.as_slice(lo as usize, len) };
        let out = unsafe { output.as_mut_slice(lo as usize, len) };
        for b in 0..len / BLOCK {
            let off = b * BLOCK;
            cipher_block(&inp[off..off + BLOCK], &mut out[off..off + BLOCK], key);
        }
    } else {
        let mut i = lo;
        while i < hi {
            let off = i as usize;
            // SAFETY: block `off` is schedule-owned by this thread.
            let inp = unsafe { input.as_slice(off, BLOCK) };
            let out = unsafe { output.as_mut_slice(off, BLOCK) };
            cipher_block(inp, out, key);
            i += st;
        }
    }
}

/// The for method (paper convention: first three params are the loop
/// bounds in bytes, step = 8). Exposed as join point `Crypt.cipherIdea`.
fn cipher_idea(
    start: i64,
    end: i64,
    step: i64,
    input: SyncSlice<'_, u8>,
    output: SyncSlice<'_, u8>,
    key: &[u16; KEY_WORDS],
) {
    aomp_weaver::call_for(
        "Crypt.cipherIdea",
        LoopRange::new(start, end, step),
        |lo, hi, st| {
            original_cipher_idea(lo, hi, st, &input, &output, key);
        },
    );
}

/// The run method (M2M refactor): both cipher phases inside one parallel
/// region. Exposed as join point `Crypt.run`.
fn crypt_run(
    plain: SyncSlice<'_, u8>,
    cipher: SyncSlice<'_, u8>,
    trip: SyncSlice<'_, u8>,
    z: &[u16; KEY_WORDS],
    dk: &[u16; KEY_WORDS],
) {
    let n = plain.len() as i64;
    aomp_weaver::call("Crypt.run", || {
        cipher_idea(0, n, BLOCK as i64, plain, cipher, z);
        cipher_idea(0, n, BLOCK as i64, cipher, trip, dk);
    });
}

/// The aspect module parallelising Crypt (the paper's concrete aspect).
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelCrypt")
        .bind(
            Pointcut::call("Crypt.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Crypt.cipherIdea"),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .build()
}

/// Run the AOmp kernel on `threads` threads (deploys the aspect for the
/// duration of the run).
pub fn run(data: &CryptData, threads: usize) -> CryptResult {
    let n = data.plain.len();
    let mut plain = data.plain.clone();
    let mut cipher = vec![0u8; n];
    let mut round_trip = vec![0u8; n];
    {
        let plain_s = SyncSlice::tracked(&mut plain, "crypt.plain");
        let cipher_s = SyncSlice::tracked(&mut cipher, "crypt.cipher");
        let trip_s = SyncSlice::tracked(&mut round_trip, "crypt.round_trip");
        Weaver::global().with_deployed(aspect(threads), || {
            crypt_run(plain_s, cipher_s, trip_s, &data.z, &data.dk);
        });
    }
    CryptResult { cipher, round_trip }
}

/// Run the base program with no aspects deployed — sequential semantics.
pub fn run_unplugged(data: &CryptData) -> CryptResult {
    let n = data.plain.len();
    let mut plain = data.plain.clone();
    let mut cipher = vec![0u8; n];
    let mut round_trip = vec![0u8; n];
    {
        let plain_s = SyncSlice::new(&mut plain);
        let cipher_s = SyncSlice::new(&mut cipher);
        let trip_s = SyncSlice::new(&mut round_trip);
        crypt_run(plain_s, cipher_s, trip_s, &data.z, &data.dk);
    }
    CryptResult { cipher, round_trip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypt::{generate, validate};
    use crate::harness::Size;

    #[test]
    fn aomp_round_trip() {
        let data = generate(Size::Small);
        for t in [1, 2, 4] {
            let r = run(&data, t);
            assert!(validate(&data, &r), "threads={t}");
        }
    }

    #[test]
    fn unplugged_is_sequential_and_correct() {
        let data = generate(Size::Small);
        let r = run_unplugged(&data);
        assert!(validate(&data, &r));
        let s = crate::crypt::seq::run(&data);
        assert_eq!(r.cipher, s.cipher);
    }
}
