//! Hand-threaded Crypt, JGF-MT style (paper Figure 3's pattern): explicit
//! thread spawning and manual block distribution written *into* the base
//! code — the baseline AOmpLib is compared against.

use super::idea::{cipher_block, BLOCK, KEY_WORDS};
use super::{CryptData, CryptResult};
use crate::shared::SyncSlice;

fn cipher_slice(
    input: &[u8],
    output: SyncSlice<'_, u8>,
    key: &[u16; KEY_WORDS],
    id: usize,
    nthreads: usize,
) {
    // Manual block distribution, exactly like JGF's IDEARunner: slice the
    // buffer into per-thread chunks aligned to the cipher block.
    let blocks = input.len() / BLOCK;
    let per = blocks / nthreads;
    let rem = blocks % nthreads;
    let lo_block = id * per + id.min(rem);
    let hi_block = lo_block + per + usize::from(id < rem);
    // SAFETY: blocks [lo_block, hi_block) are owned by this thread by
    // construction of the manual distribution.
    let out = unsafe { output.as_mut_slice(lo_block * BLOCK, (hi_block - lo_block) * BLOCK) };
    for b in lo_block..hi_block {
        let off = b * BLOCK;
        let rel = (b - lo_block) * BLOCK;
        cipher_block(&input[off..off + BLOCK], &mut out[rel..rel + BLOCK], key);
    }
}

/// Run the JGF-MT kernel on `threads` threads.
pub fn run(data: &CryptData, threads: usize) -> CryptResult {
    let n = data.plain.len();
    let mut cipher = vec![0u8; n];
    let mut round_trip = vec![0u8; n];
    {
        let cipher_s = SyncSlice::new(&mut cipher);
        // Phase 1: encrypt.
        std::thread::scope(|s| {
            for id in 1..threads {
                s.spawn(move || cipher_slice(&data.plain, cipher_s, &data.z, id, threads));
            }
            cipher_slice(&data.plain, cipher_s, &data.z, 0, threads);
        });
    }
    {
        let trip_s = SyncSlice::new(&mut round_trip);
        let cipher_ref = &cipher;
        // Phase 2: decrypt.
        std::thread::scope(|s| {
            for id in 1..threads {
                s.spawn(move || cipher_slice(cipher_ref, trip_s, &data.dk, id, threads));
            }
            cipher_slice(cipher_ref, trip_s, &data.dk, 0, threads);
        });
    }
    CryptResult { cipher, round_trip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypt::{generate, validate};
    use crate::harness::Size;

    #[test]
    fn mt_round_trip_various_thread_counts() {
        let data = generate(Size::Small);
        for t in [1, 2, 3, 8] {
            let r = run(&data, t);
            assert!(validate(&data, &r), "threads={t}");
        }
    }

    #[test]
    fn mt_matches_seq_ciphertext() {
        let data = generate(Size::Small);
        let s = crate::crypt::seq::run(&data);
        let m = run(&data, 4);
        assert_eq!(s.cipher, m.cipher);
    }
}
