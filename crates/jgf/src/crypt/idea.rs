//! The IDEA block cipher: key schedules and the 8.5-round block
//! transform, as used by the JGF Crypt kernel.

/// Subkeys per schedule: 6 per round × 8 rounds + 4 output-transform keys.
pub const KEY_WORDS: usize = 52;
/// Cipher block size in bytes.
pub const BLOCK: usize = 8;

/// IDEA multiplication: modulo 2^16 + 1 with 0 representing 2^16.
#[inline]
pub fn mul(a: u32, b: u32) -> u32 {
    if a == 0 {
        // 0 ≡ 2^16; (2^16 * b) mod (2^16+1) = (1 - b) mod (2^16+1)
        (0x1_0001 - b) & 0xFFFF
    } else if b == 0 {
        (0x1_0001 - a) & 0xFFFF
    } else {
        let p = a * b;
        let lo = p & 0xFFFF;
        let hi = p >> 16;
        // (lo - hi) mod 65537, folded into 16 bits.
        (lo.wrapping_sub(hi).wrapping_add(u32::from(lo < hi))) & 0xFFFF
    }
}

/// Multiplicative inverse modulo 2^16 + 1 (0 maps to 0, representing the
/// self-inverse 2^16). Extended Euclid, as in the JGF `inv` routine.
pub fn mul_inv(x: u16) -> u16 {
    let x = x as i64;
    if x <= 1 {
        // 0 (≡ 2^16) and 1 are their own inverses.
        return x as u16;
    }
    const MODULUS: i64 = 0x1_0001;
    let (mut t0, mut t1) = (1i64, 0i64);
    let (mut r0, mut r1) = (x, MODULUS);
    while r1 != 0 {
        let q = r0 / r1;
        (r0, r1) = (r1, r0 - q * r1);
        (t0, t1) = (t1, t0 - q * t1);
    }
    debug_assert_eq!(r0, 1, "x and 2^16+1 are coprime (modulus is prime)");
    ((t0 % MODULUS + MODULUS) % MODULUS) as u16
}

/// Additive inverse modulo 2^16.
#[inline]
fn add_inv(x: u16) -> u16 {
    x.wrapping_neg()
}

/// Expand a 128-bit user key into the 52 encryption subkeys (the IDEA
/// 25-bit-rotation schedule).
pub fn calc_encrypt_key(user_key: &[u16; 8]) -> [u16; KEY_WORDS] {
    let mut z = [0u16; KEY_WORDS];
    z[..8].copy_from_slice(user_key);
    for i in 8..KEY_WORDS {
        // Subkeys come from a 128-bit register rotated left 25 bits per
        // group of eight; expressed via earlier subkeys as in JGF.
        let j = i % 8;
        z[i] = match j {
            0..=5 => ((z[i - 7] & 0x7F) << 9) | (z[i - 6] >> 7),
            6 => ((z[i - 7] & 0x7F) << 9) | (z[i - 14] >> 7),
            _ => ((z[i - 15] & 0x7F) << 9) | (z[i - 14] >> 7),
        };
    }
    z
}

/// Derive the decryption subkeys from the encryption subkeys: runs in
/// reverse with multiplicative/additive inverses, swapping the middle
/// additive keys for rounds 2‥8.
pub fn calc_decrypt_key(z: &[u16; KEY_WORDS]) -> [u16; KEY_WORDS] {
    let mut dk = [0u16; KEY_WORDS];
    // Round 1 of decryption <- output transform of encryption.
    dk[0] = mul_inv(z[48]);
    dk[1] = add_inv(z[49]);
    dk[2] = add_inv(z[50]);
    dk[3] = mul_inv(z[51]);
    dk[4] = z[46];
    dk[5] = z[47];
    // Rounds 2..=8: walk the encryption rounds backwards, swapping the
    // two additive subkeys.
    for r in 1..8 {
        let e = (8 - r) * 6; // transform keys of encryption round 9-(r+1)
        let d = r * 6;
        dk[d] = mul_inv(z[e]);
        dk[d + 1] = add_inv(z[e + 2]);
        dk[d + 2] = add_inv(z[e + 1]);
        dk[d + 3] = mul_inv(z[e + 3]);
        dk[d + 4] = z[e - 2];
        dk[d + 5] = z[e - 1];
    }
    // Output transform of decryption <- round 1 of encryption.
    dk[48] = mul_inv(z[0]);
    dk[49] = add_inv(z[1]);
    dk[50] = add_inv(z[2]);
    dk[51] = mul_inv(z[3]);
    dk
}

/// Apply the 8.5-round IDEA transform to one 8-byte block.
#[inline]
pub fn cipher_block(input: &[u8], output: &mut [u8], key: &[u16; KEY_WORDS]) {
    debug_assert!(input.len() >= BLOCK && output.len() >= BLOCK);
    let mut x1 = u32::from(u16::from_be_bytes([input[0], input[1]]));
    let mut x2 = u32::from(u16::from_be_bytes([input[2], input[3]]));
    let mut x3 = u32::from(u16::from_be_bytes([input[4], input[5]]));
    let mut x4 = u32::from(u16::from_be_bytes([input[6], input[7]]));
    let mut k = 0;
    for _round in 0..8 {
        let a = mul(x1, u32::from(key[k]));
        let b = (x2 + u32::from(key[k + 1])) & 0xFFFF;
        let c = (x3 + u32::from(key[k + 2])) & 0xFFFF;
        let d = mul(x4, u32::from(key[k + 3]));
        let e = mul(a ^ c, u32::from(key[k + 4]));
        let f = mul(((b ^ d) + e) & 0xFFFF, u32::from(key[k + 5]));
        let g = (e + f) & 0xFFFF;
        x1 = a ^ f;
        x2 = c ^ f;
        x3 = b ^ g;
        x4 = d ^ g;
        k += 6;
    }
    // Output transform (undoes the final implicit swap).
    let y1 = mul(x1, u32::from(key[48]));
    let y2 = (x3 + u32::from(key[49])) & 0xFFFF;
    let y3 = (x2 + u32::from(key[50])) & 0xFFFF;
    let y4 = mul(x4, u32::from(key[51]));
    output[0..2].copy_from_slice(&(y1 as u16).to_be_bytes());
    output[2..4].copy_from_slice(&(y2 as u16).to_be_bytes());
    output[4..6].copy_from_slice(&(y3 as u16).to_be_bytes());
    output[6..8].copy_from_slice(&(y4 as u16).to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_KEY: [u16; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

    #[test]
    fn known_test_vector() {
        // The classical IDEA reference vector: key 0001..0008,
        // plaintext 0000 0001 0002 0003 -> ciphertext 11FB ED2B 0198 6DE5.
        let z = calc_encrypt_key(&TEST_KEY);
        let plain = [0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03];
        let mut cipher = [0u8; 8];
        cipher_block(&plain, &mut cipher, &z);
        assert_eq!(cipher, [0x11, 0xFB, 0xED, 0x2B, 0x01, 0x98, 0x6D, 0xE5]);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let z = calc_encrypt_key(&TEST_KEY);
        let dk = calc_decrypt_key(&z);
        for seed in 0u64..64 {
            let plain: [u8; 8] =
                std::array::from_fn(|i| (seed.wrapping_mul(37) as u8).wrapping_add(i as u8 * 29));
            let mut cipher = [0u8; 8];
            let mut back = [0u8; 8];
            cipher_block(&plain, &mut cipher, &z);
            cipher_block(&cipher, &mut back, &dk);
            assert_eq!(back, plain, "seed {seed}");
        }
    }

    #[test]
    fn mul_matches_modular_definition() {
        // mul treats 0 as 2^16 in Z_{65537}.
        let to_val = |x: u32| -> u64 {
            if x == 0 {
                65536
            } else {
                u64::from(x)
            }
        };
        for &a in &[0u32, 1, 2, 0x7FFF, 0x8000, 0xFFFF] {
            for &b in &[0u32, 1, 3, 0x1234, 0xFFFF] {
                let want = (to_val(a) * to_val(b)) % 65537;
                let want16 = if want == 65536 { 0 } else { want as u32 };
                assert_eq!(mul(a, b), want16, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_inv_inverts() {
        for &x in &[1u16, 2, 3, 1000, 0x7FFF, 0x8000, 0xFFFF] {
            let ix = mul_inv(x);
            assert_eq!(mul(u32::from(x), u32::from(ix)), 1, "x={x}");
        }
        // 0 represents 2^16 which is self-inverse: 2^16 * 2^16 ≡ 1.
        assert_eq!(mul_inv(0), 0);
        assert_eq!(mul(0, 0), 1);
    }

    #[test]
    fn key_schedule_is_deterministic_and_nontrivial() {
        let z1 = calc_encrypt_key(&TEST_KEY);
        let z2 = calc_encrypt_key(&TEST_KEY);
        assert_eq!(z1, z2);
        assert_ne!(
            &z1[8..16],
            &z1[0..8],
            "rotated subkeys must differ from the user key"
        );
    }
}
