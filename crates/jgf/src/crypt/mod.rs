//! JGF Crypt: IDEA encryption/decryption over a large byte buffer.
//!
//! The kernel encrypts `n` bytes with the IDEA block cipher, decrypts the
//! ciphertext with the inverse key schedule, and validates that the
//! round trip reproduces the plaintext (the JGF validation).
//!
//! Parallelisation (paper Table 2): refactor the block loop into a for
//! method (`M2FOR`), extract the crypt phase into a method (`M2M`), then
//! apply a parallel region plus a block-scheduled `@For`.

mod idea;

pub mod aomp;
pub mod mt;
pub mod seq;

pub use idea::{calc_decrypt_key, calc_encrypt_key, cipher_block, mul, mul_inv, BLOCK, KEY_WORDS};

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem definition: plaintext plus the two key schedules.
#[derive(Clone)]
pub struct CryptData {
    /// Plaintext (multiple of 8 bytes).
    pub plain: Vec<u8>,
    /// Encryption subkeys.
    pub z: [u16; KEY_WORDS],
    /// Decryption subkeys.
    pub dk: [u16; KEY_WORDS],
}

/// Bytes processed for each preset (JGF: A = 3,000,000; B = 20,000,000).
pub fn bytes_for(size: Size) -> usize {
    match size {
        Size::Small => 8 * 512,
        Size::A => 3_000_000,
        Size::B => 20_000_000,
    }
}

/// Deterministically generate plaintext and key schedules, JGF-style
/// (random user key, random plaintext).
pub fn generate(size: Size) -> CryptData {
    let n = bytes_for(size) / BLOCK * BLOCK;
    let mut rng = StdRng::seed_from_u64(0x1dea_5eed);
    let user_key: [u16; 8] = std::array::from_fn(|_| rng.gen());
    let z = calc_encrypt_key(&user_key);
    let dk = calc_decrypt_key(&z);
    let plain: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
    CryptData { plain, z, dk }
}

/// Outcome: ciphertext and the decrypted round trip.
pub struct CryptResult {
    /// Encrypted bytes.
    pub cipher: Vec<u8>,
    /// Decrypted bytes (must equal the plaintext).
    pub round_trip: Vec<u8>,
}

/// JGF validation: the decrypted text equals the original plaintext.
pub fn validate(data: &CryptData, result: &CryptResult) -> bool {
    data.plain == result.round_trip
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "Crypt",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 1),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Block), 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;

    #[test]
    fn all_variants_round_trip_and_agree() {
        let data = generate(Size::Small);
        let s = seq::run(&data);
        assert!(validate(&data, &s));
        for threads in [1, 2, 4] {
            let m = mt::run(&data, threads);
            assert!(validate(&data, &m), "mt threads={threads}");
            assert_eq!(m.cipher, s.cipher, "mt ciphertext must match seq");
            let a = aomp::run(&data, threads);
            assert!(validate(&data, &a), "aomp threads={threads}");
            assert_eq!(a.cipher, s.cipher, "aomp ciphertext must match seq");
        }
    }

    #[test]
    fn generate_is_deterministic_and_block_aligned() {
        let a = generate(Size::Small);
        let b = generate(Size::Small);
        assert_eq!(a.plain, b.plain);
        assert_eq!(a.z, b.z);
        assert_eq!(a.plain.len() % BLOCK, 0);
    }

    #[test]
    fn cipher_differs_from_plain() {
        let data = generate(Size::Small);
        let s = seq::run(&data);
        assert_ne!(s.cipher, data.plain, "encryption must change the text");
    }
}
