//! Sequential Crypt: the base program (block loop over the buffer).

use super::idea::{cipher_block, BLOCK, KEY_WORDS};
use super::{CryptData, CryptResult};

/// Encrypt/decrypt `input` into `output` block by block — the JGF
/// `cipher_idea` routine, already shaped as a *for method* over byte
/// offsets with step [`BLOCK`].
pub fn cipher_range(
    start: i64,
    end: i64,
    step: i64,
    input: &[u8],
    output: &mut [u8],
    key: &[u16; KEY_WORDS],
) {
    let mut i = start;
    while i < end {
        let off = i as usize;
        cipher_block(&input[off..off + BLOCK], &mut output[off..off + BLOCK], key);
        i += step;
    }
}

/// Run the sequential kernel.
pub fn run(data: &CryptData) -> CryptResult {
    let n = data.plain.len();
    let mut cipher = vec![0u8; n];
    let mut round_trip = vec![0u8; n];
    cipher_range(0, n as i64, BLOCK as i64, &data.plain, &mut cipher, &data.z);
    cipher_range(
        0,
        n as i64,
        BLOCK as i64,
        &cipher,
        &mut round_trip,
        &data.dk,
    );
    CryptResult { cipher, round_trip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypt::{generate, validate};
    use crate::harness::Size;

    #[test]
    fn sequential_round_trip() {
        let data = generate(Size::Small);
        let r = run(&data);
        assert!(validate(&data, &r));
    }

    #[test]
    fn partial_range_only_touches_its_blocks() {
        let data = generate(Size::Small);
        let n = data.plain.len();
        let mut out = vec![0u8; n];
        // Encrypt only the second half.
        cipher_range(
            (n / 2) as i64,
            n as i64,
            BLOCK as i64,
            &data.plain,
            &mut out,
            &data.z,
        );
        assert!(out[..n / 2].iter().all(|&b| b == 0), "first half untouched");
        assert!(out[n / 2..].iter().any(|&b| b != 0), "second half written");
    }
}
