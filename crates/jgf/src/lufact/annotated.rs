//! LUFact in the **annotation style** — a line-for-line transliteration
//! of paper Figure 8:
//!
//! ```java
//! @Parallel            int  dgefa(...)
//! @For @BarrierAfter   void reduceAllCols(...)
//! @Master @BarrierBefore @BarrierAfter  void interchange(...)
//! @Master @BarrierAfter                 void dscal(...)
//! ```
//!
//! The attribute macros expand to the same Figure 12 shims the pointcut
//! style produces, so this module and [`super::aomp`] must compute
//! bitwise-identical factorisations (asserted by the tests and by
//! `tests/lufact_annotated.rs`).
//!
//! The team size comes from the runtime default
//! (`aomp::runtime::set_default_threads` / `AOMP_NUM_THREADS`), exactly
//! like a bare `@Parallel` in the paper.

use aomp_macros::{barrier_after, barrier_before, for_loop, master, parallel};

use super::{daxpy, dgesl, dscal as dscal_blas, idamax, LufactData, LufactResult};
use crate::shared::SyncSlice;

/// Shared factorisation state (the `Linpack` object of the case study).
#[derive(Clone, Copy)]
struct Linpack<'a> {
    a: SyncSlice<'a, Vec<f64>>,
    ipvt: SyncSlice<'a, usize>,
    n: usize,
}

// SAFETY NOTE: disjointness obligations are identical to super::aomp —
// master-only sections run between barriers; the for method's schedule
// hands each thread disjoint columns.

#[master]
#[barrier_before]
#[barrier_after]
fn interchange(lp: Linpack<'_>, k: usize, l: usize) {
    // SAFETY: master-only between barriers (see module note).
    unsafe {
        lp.ipvt.set(k, l);
        let ck = lp.a.get_mut(k);
        if l != k {
            ck.swap(l, k);
        }
    }
}

#[master]
#[barrier_after]
fn dscal(lp: Linpack<'_>, k: usize, kp1: usize) {
    // SAFETY: master-only between barriers.
    unsafe {
        let ck = lp.a.get_mut(k);
        let t = -1.0 / ck[k];
        dscal_blas(lp.n - kp1, t, ck, kp1);
    }
}

/// The Figure 12 `original_*` kernel, kept out of line (see
/// EXPERIMENTS.md on why this matters for codegen).
#[inline(never)]
fn original_reduce_all_cols(
    lo: i64,
    hi: i64,
    st: i64,
    lp: Linpack<'_>,
    k: usize,
    l: usize,
    kp1: usize,
) {
    // SAFETY: the schedule owns columns [lo, hi) on this thread; the
    // pivot column is read-only during the phase.
    let col_k = unsafe { lp.a.get(k) };
    let mut j = lo;
    while j < hi {
        let col_j = unsafe { lp.a.get_mut(j as usize) };
        let t = col_j[l];
        if l != k {
            col_j[l] = col_j[k];
            col_j[k] = t;
        }
        daxpy(lp.n - kp1, t, col_k, col_j, kp1);
        j += st;
    }
}

#[for_loop(schedule = "staticBlock")]
#[barrier_after]
fn reduce_all_cols(
    startc: i64,
    endc: i64,
    is: i64,
    lp: Linpack<'_>,
    k: usize,
    l: usize,
    kp1: usize,
) {
    original_reduce_all_cols(startc, endc, is, lp, k, l, kp1);
}

#[parallel]
fn dgefa(lp: Linpack<'_>) {
    let n = lp.n;
    let nm1 = n.saturating_sub(1);
    for k in 0..nm1 {
        let kp1 = k + 1;
        // SAFETY: read phase, ordered after the previous barrier.
        let col_k = unsafe { lp.a.get(k) };
        // find l = pivot index
        let l = idamax(n - k, col_k, k) + k;
        if col_k[l] != 0.0 {
            // interchange if necessary
            interchange(lp, k, l);
            // compute multipliers
            dscal(lp, k, kp1);
            // row elimination with column indexing
            reduce_all_cols(kp1 as i64, n as i64, 1, lp, k, l, kp1);
        }
    }
}

/// Run the annotation-style kernel. The team size is the runtime
/// default; call `aomp::runtime::set_default_threads` beforehand to pick
/// one explicitly.
pub fn run(data: &LufactData) -> LufactResult {
    let mut a = data.a.clone();
    let mut x = data.b.clone();
    let mut ipvt = vec![0usize; data.n];
    {
        let lp = Linpack {
            a: SyncSlice::new(&mut a),
            ipvt: SyncSlice::new(&mut ipvt),
            n: data.n,
        };
        dgefa(lp);
    }
    if data.n > 0 {
        ipvt[data.n - 1] = data.n - 1;
    }
    dgesl(&a, data.n, &ipvt, &mut x);
    LufactResult { x, ipvt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::lufact::{generate, validate};

    #[test]
    fn annotated_style_matches_seq_and_pointcut_styles() {
        // Note: uses the runtime default thread count (whatever the test
        // host provides); correctness must hold for any team size.
        let d = generate(Size::Small);
        let s = crate::lufact::seq::run(&d);
        let r = run(&d);
        assert!(validate(&d, &r));
        assert_eq!(r.ipvt, s.ipvt);
        assert_eq!(r.x, s.x);
        let p = crate::lufact::aomp::run(&d, 3);
        assert_eq!(r.x, p.x, "annotation and pointcut styles agree bitwise");
    }
}
