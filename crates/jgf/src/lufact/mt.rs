//! Hand-threaded LUFact, JGF-MT style: threads spawned once around the
//! whole factorisation, explicit barriers, master-only pivot bookkeeping
//! and a manual block distribution of the column reduction — all written
//! into the base code (the invasive style of paper Figure 3).

use std::sync::Barrier;

use super::{daxpy, dgesl, dscal, idamax, LufactData, LufactResult};
use crate::shared::SyncSlice;

#[allow(clippy::too_many_arguments)]
fn worker(
    a: SyncSlice<'_, Vec<f64>>,
    ipvt: SyncSlice<'_, usize>,
    n: usize,
    id: usize,
    nthreads: usize,
    barrier: &Barrier,
) {
    let nm1 = n.saturating_sub(1);
    for k in 0..nm1 {
        let kp1 = k + 1;
        // SAFETY: between barriers, column k is only read (the master's
        // writes to it happen in an exclusive phase below).
        let col_k = unsafe { a.get(k) };
        let l = idamax(n - k, col_k, k) + k;
        let pivot_nonzero = col_k[l] != 0.0;
        if pivot_nonzero {
            barrier.wait();
            if id == 0 {
                // SAFETY: exclusive phase — every other thread is parked
                // between the two barriers.
                unsafe {
                    ipvt.set(k, l);
                    let ck = a.get_mut(k);
                    if l != k {
                        ck.swap(l, k);
                    }
                    let t = -1.0 / ck[k];
                    dscal(n - kp1, t, ck, kp1);
                }
            }
            barrier.wait();
            // Block distribution of columns kp1..n, JGF style.
            let total = n - kp1;
            let per = total / nthreads;
            let rem = total % nthreads;
            let lo = kp1 + id * per + id.min(rem);
            let hi = lo + per + usize::from(id < rem);
            let col_k = unsafe { a.get(k) };
            for j in lo..hi {
                // SAFETY: thread-owned column j (disjoint blocks).
                let col_j = unsafe { a.get_mut(j) };
                let t = col_j[l];
                if l != k {
                    col_j[l] = col_j[k];
                    col_j[k] = t;
                }
                daxpy(n - kp1, t, col_k, col_j, kp1);
            }
            barrier.wait();
        }
    }
    if id == 0 && n > 0 {
        // SAFETY: all reductions finished (post-loop), single writer.
        unsafe { ipvt.set(n - 1, n - 1) };
    }
}

/// Run the JGF-MT kernel on `threads` threads.
pub fn run(data: &LufactData, threads: usize) -> LufactResult {
    let mut a = data.a.clone();
    let mut x = data.b.clone();
    let mut ipvt = vec![0usize; data.n];
    {
        let a_s = SyncSlice::new(&mut a);
        let ipvt_s = SyncSlice::new(&mut ipvt);
        let barrier = Barrier::new(threads);
        let n = data.n;
        std::thread::scope(|s| {
            for id in 1..threads {
                let barrier = &barrier;
                s.spawn(move || worker(a_s, ipvt_s, n, id, threads, barrier));
            }
            worker(a_s, ipvt_s, n, 0, threads, &barrier);
        });
    }
    dgesl(&a, data.n, &ipvt, &mut x);
    LufactResult { x, ipvt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::lufact::{generate, validate};

    #[test]
    fn mt_validates_and_matches_seq() {
        let d = generate(Size::Small);
        let s = crate::lufact::seq::run(&d);
        for t in [1, 2, 3, 5] {
            let m = run(&d, t);
            assert!(validate(&d, &m), "threads={t}");
            assert_eq!(m.x, s.x, "threads={t}");
        }
    }
}
