//! JGF LUFact: the Linpack benchmark — LU factorisation with partial
//! pivoting (`dgefa`) plus triangular solve (`dgesl`).
//!
//! This is the paper's case study (§III-E, Figures 6–8): `dgefa` becomes
//! a parallel region; the row elimination is refactored into the
//! `reduceAllCols` for method (block schedule); `interchange` and `dscal`
//! are master-only steps fenced by barriers — Table 2's
//! `PR, FOR (block), 4xBR, 2xMA`.
//!
//! The matrix is stored column-major (`a[j]` is column `j`), exactly like
//! the Java Linpack code the JGF benchmark derives from.

pub mod annotated;
pub mod aomp;
pub mod mt;
pub mod seq;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem: `n`×`n` column-major matrix and right-hand side.
#[derive(Clone)]
pub struct LufactData {
    /// Matrix columns: `a[j][i]` is element (row i, column j).
    pub a: Vec<Vec<f64>>,
    /// Right-hand side (chosen so the exact solution is all ones).
    pub b: Vec<f64>,
    /// Order of the system.
    pub n: usize,
}

/// Matrix order per preset (JGF: A = 500, B = 1000).
pub fn order_for(size: Size) -> usize {
    match size {
        Size::Small => 64,
        Size::A => 500,
        Size::B => 1000,
    }
}

/// Generate the system (the Linpack `matgen`): uniform random matrix,
/// right-hand side = row sums so that `x = 1` solves `Ax = b` exactly in
/// the absence of rounding.
pub fn generate(size: Size) -> LufactData {
    let n = order_for(size);
    let mut rng = StdRng::seed_from_u64(0x10_fac7);
    let mut a = vec![vec![0.0f64; n]; n];
    for col in a.iter_mut() {
        for v in col.iter_mut() {
            *v = rng.gen_range(-0.5..0.5);
        }
    }
    let mut b = vec![0.0f64; n];
    for (i, bi) in b.iter_mut().enumerate() {
        *bi = a.iter().map(|col| col[i]).sum();
    }
    LufactData { a, b, n }
}

/// Result: the computed solution plus factorisation bookkeeping.
pub struct LufactResult {
    /// Solution vector (should be all ones).
    pub x: Vec<f64>,
    /// Pivot indices from `dgefa`.
    pub ipvt: Vec<usize>,
}

/// JGF-style validation: normalized residual of the solution against the
/// original system.
pub fn validate(data: &LufactData, result: &LufactResult) -> bool {
    let n = data.n;
    // resid = max_i |A x - b|_i against the *original* A, b.
    let mut resid = 0.0f64;
    let mut normx = 0.0f64;
    for i in 0..n {
        let mut axi = 0.0;
        for j in 0..n {
            axi += data.a[j][i] * result.x[j];
        }
        resid = resid.max((axi - data.b[i]).abs());
    }
    for &xi in &result.x {
        normx = normx.max(xi.abs());
    }
    let norma = data
        .a
        .iter()
        .flat_map(|c| c.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    let eps = f64::EPSILON;
    let normalized = resid / ((n as f64) * norma * normx * eps);
    normalized < 100.0
}

/// `idamax`: index of the element with largest magnitude in
/// `v[from..from+len]`, relative to `from` (BLAS level-1).
pub fn idamax(len: usize, v: &[f64], from: usize) -> usize {
    let mut best = 0;
    let mut bmax = -1.0f64;
    for k in 0..len {
        let m = v[from + k].abs();
        if m > bmax {
            bmax = m;
            best = k;
        }
    }
    best
}

/// `daxpy`: `dy[from..from+len] += da * dx[from..from+len]` (unit
/// strides, as Linpack's hot path uses).
#[inline]
pub fn daxpy(len: usize, da: f64, dx: &[f64], dy: &mut [f64], from: usize) {
    if da == 0.0 {
        return;
    }
    for k in from..from + len {
        dy[k] += da * dx[k];
    }
}

/// `dscal`: `v[from..from+len] *= da`.
#[inline]
pub fn dscal(len: usize, da: f64, v: &mut [f64], from: usize) {
    for x in &mut v[from..from + len] {
        *x *= da;
    }
}

/// `dgesl`: solve `Ax = b` given the `dgefa` factorisation. Sequential in
/// all variants, as in JGF (only `dgefa` is parallelised).
pub fn dgesl(a: &[Vec<f64>], n: usize, ipvt: &[usize], b: &mut [f64]) {
    let nm1 = n.saturating_sub(1);
    // Forward elimination: solve L y = b.
    for k in 0..nm1 {
        let l = ipvt[k];
        let t = b[l];
        if l != k {
            b[l] = b[k];
            b[k] = t;
        }
        let col_k = &a[k];
        for i in k + 1..n {
            b[i] += t * col_k[i];
        }
    }
    // Back substitution: solve U x = y.
    for k in (0..n).rev() {
        b[k] /= a[k][k];
        let t = -b[k];
        let col_k = &a[k];
        for i in 0..k {
            b[i] += t * col_k[i];
        }
    }
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "LUFact",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 1),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Block), 1),
            (Abstraction::Barrier, 4),
            (Abstraction::Master, 2),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_rhs_is_row_sums() {
        let d = generate(Size::Small);
        let i = 3;
        let sum: f64 = d.a.iter().map(|col| col[i]).sum();
        assert!((d.b[i] - sum).abs() < 1e-12);
    }

    #[test]
    fn idamax_finds_largest_magnitude() {
        let v = [1.0, -9.0, 3.0, 8.5];
        assert_eq!(idamax(4, &v, 0), 1);
        assert_eq!(idamax(3, &v, 1), 0); // among -9, 3, 8.5 relative to 1
        assert_eq!(idamax(2, &v, 2), 1); // among 3, 8.5
    }

    #[test]
    fn daxpy_and_dscal_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [10.0, 10.0, 10.0, 10.0];
        daxpy(2, 2.0, &x, &mut y, 1);
        assert_eq!(y, [10.0, 14.0, 16.0, 10.0]);
        let mut v = [1.0, 2.0, 3.0];
        dscal(2, 3.0, &mut v, 1);
        assert_eq!(v, [1.0, 6.0, 9.0]);
    }

    #[test]
    fn variants_agree_and_validate() {
        let data = generate(Size::Small);
        let s = seq::run(&data);
        assert!(validate(&data, &s), "seq validates");
        for t in [1, 2, 4] {
            let m = mt::run(&data, t);
            assert!(validate(&data, &m), "mt threads={t}");
            let a = aomp::run(&data, t);
            assert!(validate(&data, &a), "aomp threads={t}");
            // Same pivoting decisions -> identical solutions bitwise.
            assert_eq!(s.ipvt, m.ipvt, "mt pivots t={t}");
            assert_eq!(s.ipvt, a.ipvt, "aomp pivots t={t}");
            assert_eq!(s.x, m.x, "mt solution t={t}");
            assert_eq!(s.x, a.x, "aomp solution t={t}");
        }
    }

    #[test]
    fn solution_is_near_ones() {
        let data = generate(Size::Small);
        let s = seq::run(&data);
        for &xi in &s.x {
            assert!((xi - 1.0).abs() < 1e-8, "x={xi}");
        }
    }
}
