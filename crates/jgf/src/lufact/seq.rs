//! Sequential LUFact: the base program after the paper's refactoring
//! (Figure 6) — `dgefa` calls `interchange`, `dscal` and the
//! `reduceAllCols` for method.

use super::{daxpy, dgesl, dscal, idamax, LufactData, LufactResult};

/// Swap rows `k` and `l` inside the pivot column (paper Figure 6's
/// `interchange` method, an M2M refactor).
pub fn interchange(col_k: &mut [f64], k: usize, l: usize) {
    if l != k {
        col_k.swap(l, k);
    }
}

/// `dgefa`: LU factorisation with partial pivoting, in the refactored
/// shape of paper Figure 6.
pub fn dgefa(a: &mut [Vec<f64>], n: usize, ipvt: &mut [usize]) {
    let nm1 = n.saturating_sub(1);
    for k in 0..nm1 {
        let kp1 = k + 1;
        // find l = pivot index
        let l = idamax(n - k, &a[k], k) + k;
        ipvt[k] = l;
        if a[k][l] != 0.0 {
            // interchange if necessary
            interchange(&mut a[k], k, l);
            // compute multipliers
            let t = -1.0 / a[k][k];
            dscal(n - kp1, t, &mut a[k], kp1);
            // row elimination with column indexing
            let (head, tail) = a.split_at_mut(kp1);
            let col_k = &head[k];
            reduce_all_cols_split(0, (n - kp1) as i64, 1, tail, col_k, k, l, kp1, n);
        }
    }
    if n > 0 {
        ipvt[n - 1] = n - 1;
    }
}

/// Like [`reduce_all_cols`] but over a pre-split tail (sequential path;
/// avoids aliasing the pivot column).
#[allow(clippy::too_many_arguments)]
fn reduce_all_cols_split(
    start: i64,
    end: i64,
    is: i64,
    tail: &mut [Vec<f64>],
    col_k: &[f64],
    k: usize,
    l: usize,
    kp1: usize,
    n: usize,
) {
    let mut j = start;
    while j < end {
        let col_j = &mut tail[j as usize];
        let t = col_j[l];
        if l != k {
            col_j[l] = col_j[k];
            col_j[k] = t;
        }
        daxpy(n - kp1, t, col_k, col_j, kp1);
        j += is;
    }
}

/// Run the sequential kernel: factorise and solve.
pub fn run(data: &LufactData) -> LufactResult {
    let mut a = data.a.clone();
    let mut x = data.b.clone();
    let mut ipvt = vec![0usize; data.n];
    dgefa(&mut a, data.n, &mut ipvt);
    dgesl(&a, data.n, &ipvt, &mut x);
    LufactResult { x, ipvt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::lufact::{generate, validate};

    #[test]
    fn seq_validates() {
        let d = generate(Size::Small);
        let r = run(&d);
        assert!(validate(&d, &r));
    }

    #[test]
    fn interchange_swaps_only_when_needed() {
        let mut v = vec![1.0, 2.0, 3.0];
        interchange(&mut v, 0, 2);
        assert_eq!(v, vec![3.0, 2.0, 1.0]);
        interchange(&mut v, 1, 1);
        assert_eq!(v, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2_factorisation() {
        // A = [[4, 3], [6, 3]] (rows); columns: [4,6], [3,3].
        let mut a = vec![vec![4.0, 6.0], vec![3.0, 3.0]];
        let mut ipvt = vec![0usize; 2];
        dgefa(&mut a, 2, &mut ipvt);
        // Pivot row for column 0 is row 1 (|6| > |4|).
        assert_eq!(ipvt, vec![1, 1]);
        let mut b = vec![10.0, 12.0]; // A*[1,2] = [4+6, 6+6]? rows: [4,3]·x, [6,3]·x
                                      // For x = [1, 2]: row0 = 4*1+3*2 = 10, row1 = 6*1+3*2 = 12. ✓
        dgesl(&a, 2, &ipvt, &mut b);
        assert!(
            (b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12,
            "{b:?}"
        );
    }
}
