//! AOmpLib-style LUFact — the paper's case study, §III-E.
//!
//! The base program is the refactored Figure 6 code with each method
//! exposed as a join point; [`aspect`] is a line-for-line transliteration
//! of the Figure 7 `ParallelLinpack` aspect:
//!
//! * `Linpack.dgefa` → parallel region;
//! * `Linpack.reduceAllCols` → `@For` (static block);
//! * `Linpack.interchange`, `Linpack.dscal` → `@Master`;
//! * `@BarrierBefore` on `interchange`; `@BarrierAfter` on
//!   `reduceAllCols`, `interchange` and `dscal` — the 4 barriers and 2
//!   masters of Table 2.

use aomp::prelude::*;
use aomp_weaver::prelude::*;

use super::{daxpy, dgesl, dscal, idamax, LufactData, LufactResult};
use crate::shared::SyncSlice;

/// Shared view of the factorisation state (the `Linpack` object).
#[derive(Clone, Copy)]
struct Linpack<'a> {
    a: SyncSlice<'a, Vec<f64>>,
    ipvt: SyncSlice<'a, usize>,
    n: usize,
}

/// `interchange` join point (master-gated by the aspect): record the
/// pivot and swap rows `k`/`l` of the pivot column.
fn interchange(lp: Linpack<'_>, k: usize, l: usize) {
    aomp_weaver::call("Linpack.interchange", || {
        // SAFETY: the aspect gates this body to the master between
        // barriers, so it runs exclusively.
        unsafe {
            lp.ipvt.set(k, l);
            let ck = lp.a.get_mut(k);
            if l != k {
                ck.swap(l, k);
            }
        }
    });
}

/// `dscal` join point (master-gated): compute the multipliers in the
/// pivot column.
fn dscal_step(lp: Linpack<'_>, k: usize, kp1: usize) {
    aomp_weaver::call("Linpack.dscal", || {
        // SAFETY: master-only between barriers (see aspect).
        unsafe {
            let ck = lp.a.get_mut(k);
            let t = -1.0 / ck[k];
            dscal(lp.n - kp1, t, ck, kp1);
        }
    });
}

/// `reduceAllCols` for method: reduce columns `startc..endc` against the
/// pivot column (paper Figure 6).
fn reduce_all_cols(
    lp: Linpack<'_>,
    startc: i64,
    endc: i64,
    is: i64,
    k: usize,
    l: usize,
    kp1: usize,
) {
    aomp_weaver::call_for(
        "Linpack.reduceAllCols",
        LoopRange::new(startc, endc, is),
        |lo, hi, st| {
            // SAFETY: the schedule hands each thread disjoint columns j; the
            // pivot column is read-only in this phase.
            let col_k = unsafe { lp.a.get(k) };
            let mut j = lo;
            while j < hi {
                let col_j = unsafe { lp.a.get_mut(j as usize) };
                let t = col_j[l];
                if l != k {
                    col_j[l] = col_j[k];
                    col_j[k] = t;
                }
                daxpy(lp.n - kp1, t, col_k, col_j, kp1);
                j += st;
            }
        },
    );
}

/// `dgefa` join point: the parallel region. Every team thread executes
/// the full column loop; pivot search is computed redundantly (cheap and
/// deterministic), the master performs the exclusive steps, and the
/// column reduction is work-shared.
fn dgefa(lp: Linpack<'_>) {
    aomp_weaver::call("Linpack.dgefa", || {
        let n = lp.n;
        let nm1 = n.saturating_sub(1);
        for k in 0..nm1 {
            let kp1 = k + 1;
            // SAFETY: read phase (the preceding barrier ordered the last
            // writes to column k before these reads).
            let col_k = unsafe { lp.a.get(k) };
            // find l = pivot index
            let l = idamax(n - k, col_k, k) + k;
            if col_k[l] != 0.0 {
                // interchange if necessary
                interchange(lp, k, l);
                // compute multipliers
                dscal_step(lp, k, kp1);
                // row elimination with column indexing
                reduce_all_cols(lp, kp1 as i64, n as i64, 1, k, l, kp1);
            }
        }
    });
}

/// The `ParallelLinpack` aspect of paper Figure 7.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelLinpack")
        .bind(
            Pointcut::call("Linpack.dgefa"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Linpack.reduceAllCols"),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .bind(
            Pointcut::call("Linpack.interchange").or(Pointcut::call("Linpack.dscal")),
            Mechanism::master(),
        )
        .bind(
            Pointcut::call("Linpack.interchange"),
            Mechanism::barrier_before(),
        )
        .bind(
            Pointcut::calls([
                "Linpack.reduceAllCols",
                "Linpack.interchange",
                "Linpack.dscal",
            ]),
            Mechanism::barrier_after(),
        )
        .build()
}

/// Run the AOmp kernel on `threads` threads.
pub fn run(data: &LufactData, threads: usize) -> LufactResult {
    Weaver::global().with_deployed(aspect(threads), || run_base(data))
}

/// Run the base program with whatever aspects are currently deployed
/// (none ⇒ sequential semantics).
pub fn run_base(data: &LufactData) -> LufactResult {
    let mut a = data.a.clone();
    let mut x = data.b.clone();
    let mut ipvt = vec![0usize; data.n];
    {
        let lp = Linpack {
            a: SyncSlice::tracked(&mut a, "lufact.a"),
            ipvt: SyncSlice::tracked(&mut ipvt, "lufact.ipvt"),
            n: data.n,
        };
        dgefa(lp);
    }
    if data.n > 0 {
        ipvt[data.n - 1] = data.n - 1;
    }
    dgesl(&a, data.n, &ipvt, &mut x);
    LufactResult { x, ipvt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::lufact::{generate, validate};

    #[test]
    fn aomp_validates_and_matches_seq() {
        let d = generate(Size::Small);
        let s = crate::lufact::seq::run(&d);
        for t in [1, 2, 4] {
            let r = run(&d, t);
            assert!(validate(&d, &r), "threads={t}");
            assert_eq!(r.x, s.x, "threads={t}");
        }
    }

    #[test]
    fn unplugged_base_program_is_sequential_and_correct() {
        let d = generate(Size::Small);
        let r = run_base(&d);
        assert!(validate(&d, &r));
        assert_eq!(r.x, crate::lufact::seq::run(&d).x);
    }
}
