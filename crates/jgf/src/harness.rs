//! Common benchmark driver pieces: size presets, timing and result
//! reporting, shared by the `aomp-bench` harness and the examples.

use std::time::{Duration, Instant};

/// JGF-style problem size presets. The paper reports JGF sizes; the
/// presets here scale each kernel so `Small` finishes in well under a
/// second on one core (tests), `A`/`B` approximate JGF sizes A/B
/// (benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    /// Tiny — for unit tests.
    Small,
    /// JGF size A scale.
    A,
    /// JGF size B scale.
    B,
}

impl Size {
    /// All presets, small to large.
    pub const ALL: [Size; 3] = [Size::Small, Size::A, Size::B];

    /// Preset name.
    pub fn name(&self) -> &'static str {
        match self {
            Size::Small => "small",
            Size::A => "A",
            Size::B => "B",
        }
    }
}

/// Outcome of one benchmark execution.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Variant (`seq`, `jgf-mt`, `aomp`, `aomp-critical`, …).
    pub variant: String,
    /// Threads used (1 for `seq`).
    pub threads: usize,
    /// Wall-clock time of the timed section.
    pub elapsed: Duration,
    /// Did the JGF-style validation pass?
    pub validated: bool,
}

impl BenchResult {
    /// Wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Time `f`, returning its value and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Relative error |a-b| / max(|a|,|b|,1e-300): the JGF kernels validate
/// floating point results within a small tolerance.
pub fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-300)
}

/// True when `a` and `b` agree within relative tolerance `tol`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_and_returns() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn rel_err_basics() {
        assert!(rel_err(1.0, 1.0) == 0.0);
        assert!(rel_err(1.0, 1.01) < 0.011);
        assert!(rel_err(0.0, 0.0) == 0.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(100.0, 100.0001, 1e-5));
        assert!(!approx_eq(100.0, 101.0, 1e-5));
        assert!(approx_eq(0.0, 1e-9, 1e-8));
    }

    #[test]
    fn size_names() {
        assert_eq!(Size::Small.name(), "small");
        assert_eq!(Size::A.name(), "A");
        assert_eq!(Size::B.name(), "B");
        assert_eq!(Size::ALL.len(), 3);
    }
}
