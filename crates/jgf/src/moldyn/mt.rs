//! Hand-threaded MolDyn, JGF-MT style (paper Figure 3): explicit thread
//! spawning, cyclic particle distribution and per-thread force arrays
//! (`sh_force2`) — the red, blue and green code the paper's §II uses to
//! motivate AOmpLib.

use std::sync::Barrier;

use super::forces::{
    domove_range, force_range_local, kinetic_range, pos_sum, reduce_forces_range, rescale_range,
    scale_factor,
};
use super::{MolDynData, MolDynResult, MolShared, SCALE_INTERVAL};
use crate::shared::SyncSlice;

type LocalForces = [Vec<f64>; 3];

#[allow(clippy::too_many_arguments)]
fn worker(
    s: &MolShared,
    locals: SyncSlice<'_, LocalForces>,
    epots: SyncSlice<'_, f64>,
    virs: SyncSlice<'_, f64>,
    ekins: SyncSlice<'_, f64>,
    moves: usize,
    id: usize,
    nthreads: usize,
    barrier: &Barrier,
) {
    let n = s.n as i64;
    let (lo, step) = (id as i64, nthreads as i64);
    for mv in 0..moves {
        // Move own (cyclic) particles.
        domove_range(s, lo, n, step);
        barrier.wait();
        // Accumulate forces into this thread's private arrays.
        {
            // SAFETY: slot `id` is this thread's own local array.
            let local = unsafe { locals.get_mut(id) };
            for l in local.iter_mut() {
                l.iter_mut().for_each(|v| *v = 0.0);
            }
            let (ep, vi) = force_range_local(s, lo, n, step, local);
            // SAFETY: per-thread result slots.
            unsafe {
                epots.set(id, ep);
                virs.set(id, vi);
            }
        }
        barrier.wait();
        // Reduce all threads' contributions for the owned particles.
        {
            // SAFETY: read-only phase for the local arrays.
            let all: Vec<&LocalForces> = (0..nthreads).map(|t| unsafe { locals.get(t) }).collect();
            reduce_forces_range(s, lo, n, step, &all);
        }
        barrier.wait();
        let ek = kinetic_range(s, lo, n, step);
        // SAFETY: per-thread result slot.
        unsafe { ekins.set(id, ek) };
        barrier.wait();
        if (mv + 1) % SCALE_INTERVAL == 0 {
            // Every thread computes the same total in the same order.
            let total: f64 = (0..nthreads).map(|t| unsafe { ekins.read(t) }).sum();
            let sc = scale_factor(s.n, total);
            rescale_range(s, lo, n, step, sc);
            barrier.wait();
        }
    }
}

/// Run the JGF-MT simulation on `threads` threads.
pub fn run(data: &MolDynData, threads: usize) -> MolDynResult {
    let s = MolShared::new(data);
    let mut locals: Vec<LocalForces> = (0..threads)
        .map(|_| [vec![0.0; data.n], vec![0.0; data.n], vec![0.0; data.n]])
        .collect();
    let mut epots = vec![0.0f64; threads];
    let mut virs = vec![0.0f64; threads];
    let mut ekins = vec![0.0f64; threads];
    {
        let locals_s = SyncSlice::new(&mut locals);
        let epots_s = SyncSlice::new(&mut epots);
        let virs_s = SyncSlice::new(&mut virs);
        let ekins_s = SyncSlice::new(&mut ekins);
        let barrier = Barrier::new(threads);
        let s_ref = &s;
        std::thread::scope(|scope| {
            for id in 1..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    worker(
                        s_ref, locals_s, epots_s, virs_s, ekins_s, data.moves, id, threads, barrier,
                    )
                });
            }
            worker(
                s_ref, locals_s, epots_s, virs_s, ekins_s, data.moves, 0, threads, &barrier,
            );
        });
    }
    MolDynResult {
        ekin: ekins.iter().sum(),
        epot: epots.iter().sum(),
        vir: virs.iter().sum(),
        pos_sum: pos_sum(&s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moldyn::{agrees, generate};

    #[test]
    fn mt_two_threads_agrees_with_seq() {
        let d = generate(2, 4);
        let s = crate::moldyn::seq::run(&d);
        let m = run(&d, 2);
        assert!(agrees(&m, &s, 1e-9), "{m:?} vs {s:?}");
    }
}
