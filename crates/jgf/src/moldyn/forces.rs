//! The MolDyn integration phases, shared by every parallelisation
//! variant. Each phase is a *for-method body*: it operates on a strided
//! particle range `(lo, hi, step)` and only touches state the schedule
//! (or a variant-specific policy) entitles it to.

// Index-based loops mirror the JGF Java kernels they port.
#![allow(clippy::needless_range_loop)]

use aomp::critical::CriticalHandle;
use parking_lot::Mutex;

use super::{MolShared, H, TREF};

/// h²/2 — the force-folding factor of the leapfrog step.
pub const HSQ2: f64 = H * H * 0.5;

/// Move the owned particles: position update with periodic wrap, first
/// half velocity kick with the previous step's folded force, and force
/// reset (the JGF `domove`).
///
/// Disjointness: each particle index is owned by exactly one thread.
pub fn domove_range(s: &MolShared, lo: i64, hi: i64, step: i64) {
    let side = s.side;
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        for d in 0..3 {
            // SAFETY: particle iu is schedule-owned by this thread.
            unsafe {
                let p = s.pos[d].get_mut(iu);
                let v = s.vel[d].get_mut(iu);
                let f = s.force[d].get_mut(iu);
                *p += *v + *f;
                if *p < 0.0 {
                    *p += side;
                }
                if *p > side {
                    *p -= side;
                }
                *v += *f;
                *f = 0.0;
            }
        }
        i += step;
    }
}

/// One Lennard-Jones pair interaction. Returns
/// `(fx, fy, fz, epot_contrib, vir_contrib)` for the (i, j) pair, or
/// `None` outside the cutoff. Positions are read-only during the force
/// phase, so the unsafe reads are race-free.
#[inline]
#[allow(clippy::too_many_arguments)]
fn pair(
    s: &MolShared,
    i: usize,
    j: usize,
    sideh: f64,
    rcoffs: f64,
) -> Option<(f64, f64, f64, f64, f64)> {
    // SAFETY: force phase reads positions only (no writers until the next
    // barrier-separated domove).
    unsafe {
        let wrap = |mut d: f64| {
            if d < -sideh {
                d += s.side;
            }
            if d > sideh {
                d -= s.side;
            }
            d
        };
        let xx = wrap(s.pos[0].read(i) - s.pos[0].read(j));
        let yy = wrap(s.pos[1].read(i) - s.pos[1].read(j));
        let zz = wrap(s.pos[2].read(i) - s.pos[2].read(j));
        let rd = xx * xx + yy * yy + zz * zz;
        if rd > rcoffs || rd == 0.0 {
            return None;
        }
        let rrd = 1.0 / rd;
        let rrd2 = rrd * rrd;
        let rrd3 = rrd2 * rrd;
        let rrd4 = rrd2 * rrd2;
        let rrd6 = rrd2 * rrd4;
        let rrd7 = rrd6 * rrd;
        // Full Lennard-Jones constants (ε = σ = 1): U = 4(r⁻¹² − r⁻⁶),
        // F = 48(r⁻¹⁴ − ½r⁻⁸)·Δx. (JGF keeps the 4/48 factors outside its
        // inner loop; folding them here keeps the dynamics identical.)
        let r148 = 48.0 * (rrd7 - 0.5 * rrd4);
        Some((
            xx * r148,
            yy * r148,
            zz * r148,
            4.0 * (rrd6 - rrd3),
            -rd * r148,
        ))
    }
}

/// Force phase accumulating into per-thread `local` arrays (the JGF
/// thread-local / `@ThreadLocalField` strategy): no shared writes at all.
/// Returns this range's (epot, vir) contributions.
pub fn force_range_local(
    s: &MolShared,
    lo: i64,
    hi: i64,
    step: i64,
    local: &mut [Vec<f64>; 3],
) -> (f64, f64) {
    let sideh = 0.5 * s.side;
    let rcoffs = s.rcoff * s.rcoff;
    let (mut epot, mut vir) = (0.0, 0.0);
    let n = s.n;
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        let (mut fxi, mut fyi, mut fzi) = (0.0, 0.0, 0.0);
        for j in iu + 1..n {
            if let Some((fx, fy, fz, ep, vi)) = pair(s, iu, j, sideh, rcoffs) {
                epot += ep;
                vir += vi;
                fxi += fx;
                fyi += fy;
                fzi += fz;
                local[0][j] -= fx;
                local[1][j] -= fy;
                local[2][j] -= fz;
            }
        }
        local[0][iu] += fxi;
        local[1][iu] += fyi;
        local[2][iu] += fzi;
        i += step;
    }
    (epot, vir)
}

/// Force phase with the `@Critical` strategy (paper Figure 15
/// "Critical"): cross-particle updates run under one shared critical
/// lock.
pub fn force_range_critical(
    s: &MolShared,
    lo: i64,
    hi: i64,
    step: i64,
    crit: &CriticalHandle,
) -> (f64, f64) {
    let sideh = 0.5 * s.side;
    let rcoffs = s.rcoff * s.rcoff;
    let (mut epot, mut vir) = (0.0, 0.0);
    let n = s.n;
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        let (mut fxi, mut fyi, mut fzi) = (0.0, 0.0, 0.0);
        for j in iu + 1..n {
            if let Some((fx, fy, fz, ep, vi)) = pair(s, iu, j, sideh, rcoffs) {
                epot += ep;
                vir += vi;
                fxi += fx;
                fyi += fy;
                fzi += fz;
                crit.run(|| {
                    // SAFETY: serialised by the critical section.
                    unsafe {
                        *s.force[0].get_mut(j) -= fx;
                        *s.force[1].get_mut(j) -= fy;
                        *s.force[2].get_mut(j) -= fz;
                    }
                });
            }
        }
        crit.run(|| {
            // SAFETY: serialised by the critical section.
            unsafe {
                *s.force[0].get_mut(iu) += fxi;
                *s.force[1].get_mut(iu) += fyi;
                *s.force[2].get_mut(iu) += fzi;
            }
        });
        i += step;
    }
    (epot, vir)
}

/// Force phase with one lock per particle (paper Figure 15 "Locks").
pub fn force_range_locks(
    s: &MolShared,
    lo: i64,
    hi: i64,
    step: i64,
    locks: &[Mutex<()>],
) -> (f64, f64) {
    let sideh = 0.5 * s.side;
    let rcoffs = s.rcoff * s.rcoff;
    let (mut epot, mut vir) = (0.0, 0.0);
    let n = s.n;
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        let (mut fxi, mut fyi, mut fzi) = (0.0, 0.0, 0.0);
        for j in iu + 1..n {
            if let Some((fx, fy, fz, ep, vi)) = pair(s, iu, j, sideh, rcoffs) {
                epot += ep;
                vir += vi;
                fxi += fx;
                fyi += fy;
                fzi += fz;
                let _g = locks[j].lock();
                // SAFETY: serialised by particle j's lock.
                unsafe {
                    *s.force[0].get_mut(j) -= fx;
                    *s.force[1].get_mut(j) -= fy;
                    *s.force[2].get_mut(j) -= fz;
                }
            }
        }
        let _g = locks[iu].lock();
        // SAFETY: serialised by particle iu's lock.
        unsafe {
            *s.force[0].get_mut(iu) += fxi;
            *s.force[1].get_mut(iu) += fyi;
            *s.force[2].get_mut(iu) += fzi;
        }
        i += step;
    }
    (epot, vir)
}

/// Merge per-thread force arrays into the shared arrays for the owned
/// particle range: `f[i] += Σ_t locals[t][i]` in thread order
/// (deterministic).
pub fn reduce_forces_range(s: &MolShared, lo: i64, hi: i64, step: i64, locals: &[&[Vec<f64>; 3]]) {
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        for d in 0..3 {
            let mut acc = 0.0;
            for l in locals {
                acc += l[d][iu];
            }
            // SAFETY: particle iu is schedule-owned.
            unsafe {
                *s.force[d].get_mut(iu) += acc;
            }
        }
        i += step;
    }
}

/// Fold the freshly-accumulated raw forces by h²/2, apply the second half
/// velocity kick, and return the owned particles' kinetic energy
/// Σ½|v|² (folded units) — the JGF `mkekin`.
pub fn kinetic_range(s: &MolShared, lo: i64, hi: i64, step: i64) -> f64 {
    let mut ekin = 0.0;
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        for d in 0..3 {
            // SAFETY: particle iu is schedule-owned in this phase.
            unsafe {
                let f = s.force[d].get_mut(iu);
                let v = s.vel[d].get_mut(iu);
                *f *= HSQ2;
                *v += *f;
                ekin += 0.5 * *v * *v;
            }
        }
        i += step;
    }
    ekin
}

/// Velocity-rescaling factor towards the reference temperature, given the
/// current total kinetic energy (folded units).
pub fn scale_factor(n: usize, ekin: f64) -> f64 {
    let target = 1.5 * n as f64 * TREF * H * H;
    (target / ekin).sqrt()
}

/// Rescale the owned particles' velocities by `sc`.
pub fn rescale_range(s: &MolShared, lo: i64, hi: i64, step: i64, sc: f64) {
    let mut i = lo;
    while i < hi {
        let iu = i as usize;
        for d in 0..3 {
            // SAFETY: particle iu is schedule-owned.
            unsafe {
                *s.vel[d].get_mut(iu) *= sc;
            }
        }
        i += step;
    }
}

/// Σ positions over all particles (single-threaded contexts only).
pub fn pos_sum(s: &MolShared) -> f64 {
    let mut sum = 0.0;
    for d in 0..3 {
        for i in 0..s.n {
            // SAFETY: called outside parallel phases.
            sum += unsafe { s.pos[d].read(i) };
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moldyn::{generate, MolShared};

    #[test]
    fn pair_force_is_antisymmetric_in_distance_sign() {
        let d = generate(2, 1);
        let s = MolShared::new(&d);
        let sideh = 0.5 * s.side;
        let rcoffs = s.rcoff * s.rcoff;
        if let Some((fx, fy, fz, ep, _)) = pair(&s, 0, 1, sideh, rcoffs) {
            let (gx, gy, gz, ep2, _) = pair(&s, 1, 0, sideh, rcoffs).expect("symmetric cutoff");
            assert!((fx + gx).abs() < 1e-12 && (fy + gy).abs() < 1e-12 && (fz + gz).abs() < 1e-12);
            assert!((ep - ep2).abs() < 1e-15);
        }
    }

    #[test]
    fn local_and_critical_forces_agree() {
        let d = generate(2, 1);
        let s1 = MolShared::new(&d);
        let s2 = MolShared::new(&d);
        let n = d.n as i64;
        let mut local = [vec![0.0; d.n], vec![0.0; d.n], vec![0.0; d.n]];
        let (ep1, vir1) = force_range_local(&s1, 0, n, 1, &mut local);
        reduce_forces_range(&s1, 0, n, 1, &[&local]);
        let crit = CriticalHandle::new();
        let (ep2, vir2) = force_range_critical(&s2, 0, n, 1, &crit);
        assert!((ep1 - ep2).abs() < 1e-12);
        assert!((vir1 - vir2).abs() < 1e-12);
        for dd in 0..3 {
            for i in 0..d.n {
                let a = unsafe { s1.force[dd].read(i) };
                let b = unsafe { s2.force[dd].read(i) };
                assert!((a - b).abs() < 1e-12, "d={dd} i={i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn total_force_is_zero_by_newtons_third_law() {
        let d = generate(2, 1);
        let s = MolShared::new(&d);
        let n = d.n as i64;
        let mut local = [vec![0.0; d.n], vec![0.0; d.n], vec![0.0; d.n]];
        force_range_local(&s, 0, n, 1, &mut local);
        for dd in 0..3 {
            let total: f64 = local[dd].iter().sum();
            assert!(total.abs() < 1e-9, "dim {dd}: {total}");
        }
    }

    #[test]
    fn scale_factor_targets_tref() {
        let n = 100;
        let target = 1.5 * n as f64 * TREF * H * H;
        assert!((scale_factor(n, target) - 1.0).abs() < 1e-12);
        assert!(scale_factor(n, 2.0 * target) < 1.0);
        assert!(scale_factor(n, 0.5 * target) > 1.0);
    }
}
