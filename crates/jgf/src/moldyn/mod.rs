//! JGF MolDyn: Lennard-Jones molecular dynamics (the paper's running
//! example, §II and Figure 15).
//!
//! `n = 4·mm³` particles on an fcc lattice evolve under truncated
//! Lennard-Jones forces with periodic boundaries. Forces are symmetric
//! (Newton's third law), so the force loop has a genuine cross-particle
//! data race — the paper's motivating "green code". Four parallelisations
//! are provided:
//!
//! * [`mt`] — the JGF-MT baseline: hand-threading with per-thread force
//!   arrays (paper Figure 3's red/blue/green code);
//! * [`aomp`] — the AOmpLib version: cyclic `@For` + two
//!   `@ThreadLocalField`s (force arrays; energy accumulators) with
//!   `@Reduce` points — Table 2's `PR, FOR (cyclic), 2xTLF`;
//! * [`variants::run_critical`] — force updates in a `@Critical` section
//!   (paper Figure 15 "Critical");
//! * [`variants::run_locks`] — one lock per particle (paper Figure 15
//!   "Locks").
//!
//! The last two demonstrate the paper's key claim: alternative
//! parallelisation strategies are swapped by deploying a different aspect
//! module, without touching the base simulation code.

// Index-based loops mirror the JGF Java kernels they port.
#![allow(clippy::needless_range_loop)]

pub mod aomp;
pub mod forces;
pub mod mt;
pub mod seq;
pub mod variants;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
use crate::shared::SyncVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reduced density (JGF constant).
pub const DEN: f64 = 0.83134;
/// Reference temperature (JGF constant).
pub const TREF: f64 = 0.722;
/// Timestep. (JGF's 0.064 pairs with its constant-folded weak force; with
/// the explicit Lennard-Jones 4/48 factors the conventional stable LJ
/// timestep is ~0.004.)
pub const H: f64 = 0.004;
/// Velocity-rescaling interval in steps.
pub const SCALE_INTERVAL: usize = 8;

/// Lattice cells per side for each preset (JGF A: mm = 8 → 2048
/// particles; the paper's Figure 15 sweeps mm ∈ {6, 8, 13, 17, 40, 50}).
pub fn mm_for(size: Size) -> usize {
    match size {
        Size::Small => 4,
        Size::A => 8,
        Size::B => 13,
    }
}

/// Particle count for a lattice of `mm` cells per side.
pub fn particles(mm: usize) -> usize {
    4 * mm * mm * mm
}

/// Simulation steps per run (JGF uses 50; tests use fewer).
pub const DEFAULT_MOVES: usize = 50;

/// Immutable problem definition: initial particle state.
#[derive(Clone)]
pub struct MolDynData {
    /// Particle count.
    pub n: usize,
    /// Box side length.
    pub side: f64,
    /// Force cutoff radius.
    pub rcoff: f64,
    /// Initial positions, per dimension.
    pub pos: [Vec<f64>; 3],
    /// Initial velocities (time-folded units: displacement per step).
    pub vel: [Vec<f64>; 3],
    /// Steps to simulate.
    pub moves: usize,
}

/// Build the fcc lattice and Maxwell-ish velocities, deterministically.
pub fn generate(mm: usize, moves: usize) -> MolDynData {
    let n = particles(mm);
    let side = (n as f64 / DEN).cbrt();
    // Standard LJ cutoff (2.5σ), capped at half the box for the minimum-
    // image convention. (JGF uses mm/4 · a, which equals side/4; that is
    // below the nearest-neighbour distance for small lattices, so the
    // conventional cutoff keeps small test systems physical.)
    let rcoff = 2.5f64.min(side / 2.0);
    let a = side / mm as f64;
    let mut pos = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
    // fcc basis within each cell.
    let basis = [
        (0.0, 0.0, 0.0),
        (0.0, 0.5, 0.5),
        (0.5, 0.0, 0.5),
        (0.5, 0.5, 0.0),
    ];
    let mut idx = 0;
    for ix in 0..mm {
        for iy in 0..mm {
            for iz in 0..mm {
                for &(bx, by, bz) in &basis {
                    pos[0][idx] = (ix as f64 + bx) * a;
                    pos[1][idx] = (iy as f64 + by) * a;
                    pos[2][idx] = (iz as f64 + bz) * a;
                    idx += 1;
                }
            }
        }
    }
    // Gaussian velocities (Box–Muller), zero net momentum, scaled to the
    // reference temperature; folded by the timestep.
    let mut rng = StdRng::seed_from_u64(0x401d_da1d);
    let mut vel = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
    for d in 0..3 {
        for v in vel[d].iter_mut() {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            *v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        let mean: f64 = vel[d].iter().sum::<f64>() / n as f64;
        for v in vel[d].iter_mut() {
            *v -= mean;
        }
    }
    let vsq: f64 = (0..3)
        .map(|d| vel[d].iter().map(|v| v * v).sum::<f64>())
        .sum();
    let sc = (3.0 * n as f64 * TREF / vsq).sqrt() * H;
    for d in 0..3 {
        for v in vel[d].iter_mut() {
            *v *= sc;
        }
    }
    MolDynData {
        n,
        side,
        rcoff,
        pos,
        vel,
        moves,
    }
}

/// Shared mutable simulation state, `Arc`-shareable so aspect modules can
/// capture it (the `md` object of the paper's Figure 2).
pub struct MolShared {
    /// Particle count.
    pub n: usize,
    /// Box side length.
    pub side: f64,
    /// Force cutoff radius.
    pub rcoff: f64,
    /// Positions per dimension.
    pub pos: [SyncVec<f64>; 3],
    /// Velocities per dimension (folded units).
    pub vel: [SyncVec<f64>; 3],
    /// Forces per dimension (folded units after the scale phase).
    pub force: [SyncVec<f64>; 3],
}

impl MolShared {
    /// Initialise from a problem definition.
    pub fn new(data: &MolDynData) -> Self {
        Self {
            n: data.n,
            side: data.side,
            rcoff: data.rcoff,
            pos: [
                SyncVec::tracked(data.pos[0].clone(), "moldyn.pos.x"),
                SyncVec::tracked(data.pos[1].clone(), "moldyn.pos.y"),
                SyncVec::tracked(data.pos[2].clone(), "moldyn.pos.z"),
            ],
            vel: [
                SyncVec::tracked(data.vel[0].clone(), "moldyn.vel.x"),
                SyncVec::tracked(data.vel[1].clone(), "moldyn.vel.y"),
                SyncVec::tracked(data.vel[2].clone(), "moldyn.vel.z"),
            ],
            force: [
                SyncVec::zeroed_tracked(data.n, "moldyn.force.x"),
                SyncVec::zeroed_tracked(data.n, "moldyn.force.y"),
                SyncVec::zeroed_tracked(data.n, "moldyn.force.z"),
            ],
        }
    }
}

/// Result: energy bookkeeping of the final step plus a trajectory
/// checksum.
#[derive(Debug, Clone, PartialEq)]
pub struct MolDynResult {
    /// Kinetic energy (folded units) at the end.
    pub ekin: f64,
    /// Potential energy accumulated in the final force evaluation.
    pub epot: f64,
    /// Virial accumulated in the final force evaluation.
    pub vir: f64,
    /// Σ positions — a cheap trajectory checksum.
    pub pos_sum: f64,
}

/// Cross-variant validation: energies finite, potential negative (bound
/// Lennard-Jones liquid), kinetic positive.
pub fn validate(r: &MolDynResult) -> bool {
    r.ekin.is_finite() && r.epot.is_finite() && r.vir.is_finite() && r.ekin > 0.0 && r.epot < 0.0
}

/// Relative agreement between two runs (different summation orders make
/// bitwise equality impossible; MD is chaotic so tolerance grows with
/// step count — compare only short runs).
pub fn agrees(a: &MolDynResult, b: &MolDynResult, tol: f64) -> bool {
    crate::harness::approx_eq(a.ekin, b.ekin, tol)
        && crate::harness::approx_eq(a.epot, b.epot, tol)
        && crate::harness::approx_eq(a.pos_sum, b.pos_sum, tol)
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "MolDyn",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 3),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Cyclic), 1),
            (Abstraction::ThreadLocalField, 2),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_MOVES: usize = 6;

    #[test]
    fn lattice_is_inside_box() {
        let d = generate(3, TEST_MOVES);
        assert_eq!(d.n, 108);
        for dim in 0..3 {
            assert!(d.pos[dim].iter().all(|&p| (0.0..=d.side).contains(&p)));
        }
    }

    #[test]
    fn velocities_have_zero_net_momentum() {
        let d = generate(3, TEST_MOVES);
        for dim in 0..3 {
            let sum: f64 = d.vel[dim].iter().sum();
            assert!(sum.abs() < 1e-9, "dim {dim}: {sum}");
        }
    }

    #[test]
    fn seq_run_validates() {
        let d = generate(3, TEST_MOVES);
        let r = seq::run(&d);
        assert!(validate(&r), "{r:?}");
    }

    #[test]
    fn all_variants_agree_with_seq() {
        let d = generate(3, TEST_MOVES);
        let s = seq::run(&d);
        for t in [1, 2, 4] {
            let m = mt::run(&d, t);
            assert!(
                validate(&m) && agrees(&m, &s, 1e-6),
                "mt t={t}: {m:?} vs {s:?}"
            );
            let a = aomp::run(&d, t);
            assert!(
                validate(&a) && agrees(&a, &s, 1e-6),
                "aomp t={t}: {a:?} vs {s:?}"
            );
            let c = variants::run_critical(&d, t);
            assert!(
                validate(&c) && agrees(&c, &s, 1e-6),
                "critical t={t}: {c:?} vs {s:?}"
            );
            let l = variants::run_locks(&d, t);
            assert!(
                validate(&l) && agrees(&l, &s, 1e-6),
                "locks t={t}: {l:?} vs {s:?}"
            );
        }
    }

    #[test]
    fn mt_single_thread_matches_seq_bitwise() {
        let d = generate(3, TEST_MOVES);
        let s = seq::run(&d);
        let m = mt::run(&d, 1);
        assert_eq!(s, m);
    }
}
