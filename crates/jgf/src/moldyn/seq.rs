//! Sequential MolDyn: the base program of paper Figure 14 — `runiters`
//! drives `domove`, `compute_forces` (the M2FOR refactor) and the energy
//! steps.

use super::forces::{
    domove_range, force_range_local, kinetic_range, pos_sum, reduce_forces_range, rescale_range,
    scale_factor,
};
use super::{MolDynData, MolDynResult, MolShared, SCALE_INTERVAL};

/// Run the sequential simulation. Uses the same local-buffer force
/// accumulation as the thread-local parallel variants so that a
/// single-thread parallel run reproduces it bitwise.
pub fn run(data: &MolDynData) -> MolDynResult {
    let s = MolShared::new(data);
    let n = data.n as i64;
    let mut local = [vec![0.0; data.n], vec![0.0; data.n], vec![0.0; data.n]];
    let (mut ekin, mut epot, mut vir) = (0.0, 0.0, 0.0);
    for mv in 0..data.moves {
        domove_range(&s, 0, n, 1);
        for l in local.iter_mut() {
            l.iter_mut().for_each(|v| *v = 0.0);
        }
        let (ep, vi) = force_range_local(&s, 0, n, 1, &mut local);
        epot = ep;
        vir = vi;
        reduce_forces_range(&s, 0, n, 1, &[&local]);
        ekin = kinetic_range(&s, 0, n, 1);
        if (mv + 1) % SCALE_INTERVAL == 0 {
            let sc = scale_factor(data.n, ekin);
            rescale_range(&s, 0, n, 1, sc);
        }
    }
    MolDynResult {
        ekin,
        epot,
        vir,
        pos_sum: pos_sum(&s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moldyn::generate;

    #[test]
    fn deterministic() {
        let d = generate(2, 4);
        assert_eq!(run(&d), run(&d));
    }

    #[test]
    fn particles_stay_in_box() {
        let d = generate(2, 4);
        let s = MolShared::new(&d);
        let n = d.n as i64;
        let mut local = [vec![0.0; d.n], vec![0.0; d.n], vec![0.0; d.n]];
        for _ in 0..4 {
            domove_range(&s, 0, n, 1);
            for l in local.iter_mut() {
                l.iter_mut().for_each(|v| *v = 0.0);
            }
            force_range_local(&s, 0, n, 1, &mut local);
            reduce_forces_range(&s, 0, n, 1, &[&local]);
            kinetic_range(&s, 0, n, 1);
        }
        for dim in 0..3 {
            for i in 0..d.n {
                let p = unsafe { s.pos[dim].read(i) };
                assert!((-0.5..=d.side + 0.5).contains(&p), "dim {dim} i {i}: {p}");
            }
        }
    }
}
