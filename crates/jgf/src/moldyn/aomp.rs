//! AOmpLib-style MolDyn (the paper's Figure 14 base program + aspects):
//! cyclic `@For` over particles, two `@ThreadLocalField`s — the force
//! accumulation arrays and the (epot, vir) energy pair — drained at
//! `@Reduce`-style master points, and a master-broadcast value join point
//! for the kinetic-energy total. Table 2: `PR, FOR (cyclic), 2xTLF`.

// Index-based loops mirror the JGF Java kernels they port.
#![allow(clippy::needless_range_loop)]

use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use super::forces::{
    domove_range, force_range_local, kinetic_range, pos_sum, rescale_range, scale_factor,
};
use super::{MolDynData, MolDynResult, MolShared, SCALE_INTERVAL};

type LocalForces = [Vec<f64>; 3];

/// The base-program state: the shared `md` object plus the two
/// thread-local fields.
struct Sim {
    s: MolShared,
    /// `@ThreadLocalField` #1: per-thread force accumulation arrays.
    force_tlf: ThreadLocalField<LocalForces>,
    /// `@ThreadLocalField` #2: per-thread (epot, vir) accumulators.
    energy_tlf: ThreadLocalField<(f64, f64)>,
    /// Per-thread kinetic contributions (merged at the master point).
    ekin_tlf: ThreadLocalField<f64>,
    /// Iteration totals published by the master.
    totals: Mutex<(f64, f64, f64)>, // (ekin, epot, vir)
}

fn zeros(n: usize) -> LocalForces {
    [vec![0.0; n], vec![0.0; n], vec![0.0; n]]
}

fn domove(sim: &Sim) {
    aomp_weaver::call_for(
        "MolDyn.domove",
        LoopRange::upto(0, sim.s.n as i64),
        |lo, hi, st| {
            domove_range(&sim.s, lo, hi, st);
        },
    );
}

fn compute_forces(sim: &Sim) {
    aomp_weaver::call_for(
        "MolDyn.computeForces",
        LoopRange::upto(0, sim.s.n as i64),
        |lo, hi, st| {
            let n = sim.s.n;
            sim.force_tlf.update_or_init(
                || zeros(n),
                |local| {
                    let (ep, vi) = force_range_local(&sim.s, lo, hi, st, local);
                    sim.energy_tlf.update_or_init(
                        || (0.0, 0.0),
                        |e| {
                            e.0 += ep;
                            e.1 += vi;
                        },
                    );
                },
            );
        },
    );
}

/// `@Reduce` point: the master merges every thread's force arrays into
/// the shared arrays and folds the energy pairs (the thread-local copies
/// are drained, so the next iteration re-initialises them to zero).
fn reduce_forces(sim: &Sim) {
    aomp_weaver::call("MolDyn.reduceForces", || {
        for local in sim.force_tlf.drain_locals() {
            for d in 0..3 {
                for i in 0..sim.s.n {
                    // SAFETY: master-only section between barriers.
                    unsafe {
                        *sim.s.force[d].get_mut(i) += local[d][i];
                    }
                }
            }
        }
        let (mut ep, mut vi) = (0.0, 0.0);
        for (e, v) in sim.energy_tlf.drain_locals() {
            ep += e;
            vi += v;
        }
        let mut t = sim.totals.lock();
        t.1 = ep;
        t.2 = vi;
    });
}

fn update_kinetic(sim: &Sim) {
    aomp_weaver::call_for(
        "MolDyn.updateKinetic",
        LoopRange::upto(0, sim.s.n as i64),
        |lo, hi, st| {
            let ek = kinetic_range(&sim.s, lo, hi, st);
            sim.ekin_tlf.update_or_init(|| 0.0, |v| *v += ek);
        },
    );
}

/// Master-broadcast value join point: the team-wide kinetic total.
fn total_ekin(sim: &Sim) -> f64 {
    aomp_weaver::call_value("MolDyn.totalEkin", || {
        let total: f64 = sim.ekin_tlf.drain_locals().into_iter().sum();
        sim.totals.lock().0 = total;
        total
    })
}

fn rescale(sim: &Sim, sc: f64) {
    aomp_weaver::call_for(
        "MolDyn.rescale",
        LoopRange::upto(0, sim.s.n as i64),
        |lo, hi, st| {
            rescale_range(&sim.s, lo, hi, st, sc);
        },
    );
}

/// `runiters` (paper Figure 2/14): the parallel-region join point.
fn runiters(sim: &Sim, moves: usize) {
    aomp_weaver::call("MolDyn.runiters", || {
        for mv in 0..moves {
            domove(sim);
            compute_forces(sim);
            reduce_forces(sim);
            update_kinetic(sim);
            let total = total_ekin(sim);
            if (mv + 1) % SCALE_INTERVAL == 0 {
                let sc = scale_factor(sim.s.n, total);
                rescale(sim, sc);
            }
        }
    });
}

/// The concrete MolDyn aspect: parallel region, cyclic for methods with
/// barriers, master-gated reduce points.
pub fn aspect(threads: usize) -> AspectModule {
    let mut b = AspectModule::builder("ParallelMolDyn").bind(
        Pointcut::call("MolDyn.runiters"),
        Mechanism::parallel().threads(threads),
    );
    for jp in [
        "MolDyn.domove",
        "MolDyn.computeForces",
        "MolDyn.updateKinetic",
        "MolDyn.rescale",
    ] {
        b = b
            .bind(
                Pointcut::call(jp),
                Mechanism::for_loop(Schedule::StaticCyclic),
            )
            .bind(Pointcut::call(jp), Mechanism::barrier_after());
    }
    b.bind(Pointcut::call("MolDyn.reduceForces"), Mechanism::master())
        .bind(
            Pointcut::call("MolDyn.reduceForces"),
            Mechanism::barrier_before(),
        )
        .bind(
            Pointcut::call("MolDyn.reduceForces"),
            Mechanism::barrier_after(),
        )
        .bind(Pointcut::call("MolDyn.totalEkin"), Mechanism::master())
        .bind(
            Pointcut::call("MolDyn.totalEkin"),
            Mechanism::barrier_before(),
        )
        .build()
}

/// Run the AOmp simulation on `threads` threads.
pub fn run(data: &MolDynData, threads: usize) -> MolDynResult {
    let sim = Sim {
        s: MolShared::new(data),
        force_tlf: ThreadLocalField::new(zeros(0)),
        energy_tlf: ThreadLocalField::new((0.0, 0.0)),
        ekin_tlf: ThreadLocalField::new(0.0),
        totals: Mutex::new((0.0, 0.0, 0.0)),
    };
    Weaver::global().with_deployed(aspect(threads), || runiters(&sim, data.moves));
    let (ekin, epot, vir) = *sim.totals.lock();
    MolDynResult {
        ekin,
        epot,
        vir,
        pos_sum: pos_sum(&sim.s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moldyn::{agrees, generate, validate};

    #[test]
    fn unplugged_base_program_matches_seq() {
        let d = generate(2, 4);
        let sim = Sim {
            s: MolShared::new(&d),
            force_tlf: ThreadLocalField::new(zeros(0)),
            energy_tlf: ThreadLocalField::new((0.0, 0.0)),
            ekin_tlf: ThreadLocalField::new(0.0),
            totals: Mutex::new((0.0, 0.0, 0.0)),
        };
        runiters(&sim, d.moves);
        let (ekin, epot, vir) = *sim.totals.lock();
        let r = MolDynResult {
            ekin,
            epot,
            vir,
            pos_sum: pos_sum(&sim.s),
        };
        let s = crate::moldyn::seq::run(&d);
        assert!(validate(&r));
        assert!(agrees(&r, &s, 1e-9), "{r:?} vs {s:?}");
    }
}
