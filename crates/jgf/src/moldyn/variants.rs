//! The alternative MolDyn parallelisations of paper Figure 15:
//! force updates under a single `@Critical` section, and one lock per
//! particle. Both share the same base program skeleton as the
//! thread-local variant — the paper's point: "multiple parallelisation
//! approaches can be experimented (and simultaneously supported) without
//! modifying the base program".

use aomp::critical::CriticalHandle;
use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use super::forces::{
    domove_range, force_range_critical, force_range_locks, kinetic_range, pos_sum, rescale_range,
    scale_factor,
};
use super::{MolDynData, MolDynResult, MolShared, SCALE_INTERVAL};

/// How cross-particle force updates are protected.
pub enum ForcePolicy {
    /// One shared critical lock (paper Figure 15 "Critical").
    Critical(CriticalHandle),
    /// One lock per particle (paper Figure 15 "Locks").
    Locks(Vec<Mutex<()>>),
}

impl ForcePolicy {
    /// Display name used by the Figure 15 harness.
    pub fn name(&self) -> &'static str {
        match self {
            ForcePolicy::Critical(_) => "Critical",
            ForcePolicy::Locks(_) => "Locks",
        }
    }
}

struct Sim {
    s: MolShared,
    policy: ForcePolicy,
    energy_tlf: ThreadLocalField<(f64, f64)>,
    ekin_tlf: ThreadLocalField<f64>,
    totals: Mutex<(f64, f64, f64)>,
}

fn compute_forces(sim: &Sim) {
    aomp_weaver::call_for(
        "MolDynVar.computeForces",
        LoopRange::upto(0, sim.s.n as i64),
        |lo, hi, st| {
            let (ep, vi) = match &sim.policy {
                ForcePolicy::Critical(crit) => force_range_critical(&sim.s, lo, hi, st, crit),
                ForcePolicy::Locks(locks) => force_range_locks(&sim.s, lo, hi, st, locks),
            };
            sim.energy_tlf.update_or_init(
                || (0.0, 0.0),
                |e| {
                    e.0 += ep;
                    e.1 += vi;
                },
            );
        },
    );
}

/// Master point folding the per-thread energy pairs.
fn reduce_energies(sim: &Sim) {
    aomp_weaver::call("MolDynVar.reduceEnergies", || {
        let (mut ep, mut vi) = (0.0, 0.0);
        for (e, v) in sim.energy_tlf.drain_locals() {
            ep += e;
            vi += v;
        }
        let mut t = sim.totals.lock();
        t.1 = ep;
        t.2 = vi;
    });
}

fn total_ekin(sim: &Sim) -> f64 {
    aomp_weaver::call_value("MolDynVar.totalEkin", || {
        let total: f64 = sim.ekin_tlf.drain_locals().into_iter().sum();
        sim.totals.lock().0 = total;
        total
    })
}

fn runiters(sim: &Sim, moves: usize) {
    aomp_weaver::call("MolDynVar.runiters", || {
        let n = sim.s.n as i64;
        for mv in 0..moves {
            aomp_weaver::call_for("MolDynVar.domove", LoopRange::upto(0, n), |lo, hi, st| {
                domove_range(&sim.s, lo, hi, st);
            });
            compute_forces(sim);
            reduce_energies(sim);
            aomp_weaver::call_for(
                "MolDynVar.updateKinetic",
                LoopRange::upto(0, n),
                |lo, hi, st| {
                    let ek = kinetic_range(&sim.s, lo, hi, st);
                    sim.ekin_tlf.update_or_init(|| 0.0, |v| *v += ek);
                },
            );
            let total = total_ekin(sim);
            if (mv + 1) % SCALE_INTERVAL == 0 {
                let sc = scale_factor(sim.s.n, total);
                aomp_weaver::call_for("MolDynVar.rescale", LoopRange::upto(0, n), |lo, hi, st| {
                    rescale_range(&sim.s, lo, hi, st, sc);
                });
            }
        }
    });
}

/// The aspect for the variant runs (independent of the force policy —
/// the policy itself is the swappable piece).
pub fn aspect(threads: usize) -> AspectModule {
    let mut b = AspectModule::builder("ParallelMolDynVariant").bind(
        Pointcut::call("MolDynVar.runiters"),
        Mechanism::parallel().threads(threads),
    );
    for jp in [
        "MolDynVar.domove",
        "MolDynVar.computeForces",
        "MolDynVar.updateKinetic",
        "MolDynVar.rescale",
    ] {
        b = b
            .bind(
                Pointcut::call(jp),
                Mechanism::for_loop(Schedule::StaticCyclic),
            )
            .bind(Pointcut::call(jp), Mechanism::barrier_after());
    }
    b.bind(
        Pointcut::call("MolDynVar.reduceEnergies"),
        Mechanism::master(),
    )
    .bind(
        Pointcut::call("MolDynVar.reduceEnergies"),
        Mechanism::barrier_after(),
    )
    .bind(Pointcut::call("MolDynVar.totalEkin"), Mechanism::master())
    .bind(
        Pointcut::call("MolDynVar.totalEkin"),
        Mechanism::barrier_before(),
    )
    .build()
}

fn run_policy(data: &MolDynData, threads: usize, policy: ForcePolicy) -> MolDynResult {
    let sim = Sim {
        s: MolShared::new(data),
        policy,
        energy_tlf: ThreadLocalField::new((0.0, 0.0)),
        ekin_tlf: ThreadLocalField::new(0.0),
        totals: Mutex::new((0.0, 0.0, 0.0)),
    };
    Weaver::global().with_deployed(aspect(threads), || runiters(&sim, data.moves));
    let (ekin, epot, vir) = *sim.totals.lock();
    MolDynResult {
        ekin,
        epot,
        vir,
        pos_sum: pos_sum(&sim.s),
    }
}

/// Figure 15 "Critical": cross-particle force updates in one critical
/// section.
pub fn run_critical(data: &MolDynData, threads: usize) -> MolDynResult {
    run_policy(data, threads, ForcePolicy::Critical(CriticalHandle::new()))
}

/// Figure 15 "Locks": one lock per particle.
pub fn run_locks(data: &MolDynData, threads: usize) -> MolDynResult {
    run_policy(
        data,
        threads,
        ForcePolicy::Locks((0..data.n).map(|_| Mutex::new(())).collect()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moldyn::{agrees, generate};

    #[test]
    fn critical_and_locks_agree_with_each_other() {
        let d = generate(2, 4);
        let c = run_critical(&d, 2);
        let l = run_locks(&d, 2);
        assert!(agrees(&c, &l, 1e-9), "{c:?} vs {l:?}");
    }
}
