//! # aomp-jgf — the Java Grande Forum benchmarks of the AOmpLib paper
//!
//! The paper evaluates AOmpLib on the JGF section-2/3 benchmarks: Crypt,
//! LUFact, Series, SOR, SparseMatmult, MolDyn, MonteCarlo and RayTracer.
//! This crate ports each kernel to Rust in three versions:
//!
//! * `seq` — the sequential base program (paper Figure 2 style);
//! * `mt` — the hand-threaded JGF multi-thread parallelisation (paper
//!   Figure 3 style: explicit thread spawning, cyclic/block distribution
//!   and dependence management scattered through the base code) — the
//!   *baseline* of the paper's Figure 13;
//! * `aomp` — the AOmpLib parallelisation: the base code refactored into
//!   for methods (paper Figure 14) composed with aspect modules /
//!   annotation-style constructs from the `aomp` runtime.
//!
//! Every benchmark validates its result against JGF-style reference
//! checks, exposes its problem-size presets, and registers its paper
//! Table 2 metadata (refactorings and abstractions used) in [`meta`].
//!
//! MolDyn additionally provides the paper Figure 15 variants: force
//! updates under a global critical section, under one lock per particle,
//! and with the JGF thread-local force arrays.

#![warn(missing_docs)]

pub mod harness;
pub mod meta;
pub mod shared;

pub mod crypt;
pub mod lufact;
pub mod moldyn;
pub mod montecarlo;
pub mod raytracer;
pub mod series;
pub mod sor;
pub mod sparse;

pub use harness::{BenchResult, Size};
pub use meta::{all_benchmarks, Abstraction, BenchmarkMeta, ForKind, Refactoring};
