//! Paper Table 2 metadata: the refactorings and abstractions each AOmp
//! parallelisation needed.
//!
//! Each benchmark's `aomp` module registers its own metadata; the
//! `table2` harness binary prints the assembled table and the test suite
//! asserts it matches the paper row for row.

use std::fmt;

/// Refactoring kinds of paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Refactoring {
    /// M2M — move statements to a (named) method.
    MoveToMethod,
    /// M2FOR — move a loop into a *for method*.
    MoveToForMethod,
}

impl fmt::Display for Refactoring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refactoring::MoveToMethod => write!(f, "M2M"),
            Refactoring::MoveToForMethod => write!(f, "M2FOR"),
        }
    }
}

/// The schedule column of the `FOR` abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForKind {
    /// `FOR (block)`.
    Block,
    /// `FOR (cyclic)`.
    Cyclic,
    /// `FOR (Case Specific)` — an application-specific schedule.
    CaseSpecific,
}

impl fmt::Display for ForKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForKind::Block => write!(f, "block"),
            ForKind::Cyclic => write!(f, "cyclic"),
            ForKind::CaseSpecific => write!(f, "Case Specific"),
        }
    }
}

/// Abstraction kinds of paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Abstraction {
    /// PR — parallel region.
    ParallelRegion,
    /// FOR — for work-sharing with a schedule.
    For(ForKind),
    /// BR — barrier.
    Barrier,
    /// MA — master.
    Master,
    /// TLF — thread-local field.
    ThreadLocalField,
    /// CS — case-specific aspect.
    CaseSpecific,
}

impl fmt::Display for Abstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Abstraction::ParallelRegion => write!(f, "PR"),
            Abstraction::For(k) => write!(f, "FOR ({k})"),
            Abstraction::Barrier => write!(f, "BR"),
            Abstraction::Master => write!(f, "MA"),
            Abstraction::ThreadLocalField => write!(f, "TLF"),
            Abstraction::CaseSpecific => write!(f, "CS"),
        }
    }
}

/// One Table 2 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkMeta {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Refactorings applied to the base program, with multiplicity.
    pub refactorings: Vec<(Refactoring, usize)>,
    /// Abstractions used by the parallelisation, with multiplicity.
    pub abstractions: Vec<(Abstraction, usize)>,
}

impl BenchmarkMeta {
    /// Format the refactorings column as the paper prints it
    /// (`M2FOR, 3xM2M`).
    pub fn refactorings_column(&self) -> String {
        self.refactorings
            .iter()
            .map(|(r, n)| {
                if *n == 1 {
                    r.to_string()
                } else {
                    format!("{n}x{r}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Format the abstractions column as the paper prints it
    /// (`PR, FOR (block), 4xBR, 2xMA`).
    pub fn abstractions_column(&self) -> String {
        self.abstractions
            .iter()
            .map(|(a, n)| {
                if *n == 1 {
                    a.to_string()
                } else {
                    format!("{n}x{a}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Table 2, row for row, assembled from each benchmark module's
/// declaration.
pub fn all_benchmarks() -> Vec<BenchmarkMeta> {
    vec![
        crate::crypt::table2_meta(),
        crate::lufact::table2_meta(),
        crate::series::table2_meta(),
        crate::sor::table2_meta(),
        crate::sparse::table2_meta(),
        crate::moldyn::table2_meta(),
        crate::montecarlo::table2_meta(),
        crate::raytracer::table2_meta(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_match_paper_vocabulary() {
        assert_eq!(Refactoring::MoveToMethod.to_string(), "M2M");
        assert_eq!(Refactoring::MoveToForMethod.to_string(), "M2FOR");
        assert_eq!(Abstraction::ParallelRegion.to_string(), "PR");
        assert_eq!(Abstraction::For(ForKind::Block).to_string(), "FOR (block)");
        assert_eq!(
            Abstraction::For(ForKind::Cyclic).to_string(),
            "FOR (cyclic)"
        );
        assert_eq!(
            Abstraction::For(ForKind::CaseSpecific).to_string(),
            "FOR (Case Specific)"
        );
        assert_eq!(Abstraction::Barrier.to_string(), "BR");
        assert_eq!(Abstraction::Master.to_string(), "MA");
        assert_eq!(Abstraction::ThreadLocalField.to_string(), "TLF");
        assert_eq!(Abstraction::CaseSpecific.to_string(), "CS");
    }

    #[test]
    fn columns_render_multiplicities() {
        let m = BenchmarkMeta {
            name: "LUFact",
            refactorings: vec![
                (Refactoring::MoveToForMethod, 1),
                (Refactoring::MoveToMethod, 1),
            ],
            abstractions: vec![
                (Abstraction::ParallelRegion, 1),
                (Abstraction::For(ForKind::Block), 1),
                (Abstraction::Barrier, 4),
                (Abstraction::Master, 2),
            ],
        };
        assert_eq!(m.refactorings_column(), "M2FOR, M2M");
        assert_eq!(m.abstractions_column(), "PR, FOR (block), 4xBR, 2xMA");
    }
}
