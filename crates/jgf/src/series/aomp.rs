//! AOmpLib-style Series: the for method from `seq` exposed as a join
//! point, composed with a combined parallel-for aspect (paper §III-D) —
//! `PR, FOR (block)`.

use aomp::prelude::*;
use aomp_weaver::prelude::*;

use super::{coefficient_pair, SeriesResult};
use crate::shared::SyncSlice;

/// The for method join point `Series.doCoefficients`.
fn do_coefficients(start: i64, end: i64, step: i64, a: SyncSlice<'_, f64>, b: SyncSlice<'_, f64>) {
    aomp_weaver::call_for(
        "Series.doCoefficients",
        LoopRange::new(start, end, step),
        |lo, hi, st| {
            let mut k = lo;
            while k < hi {
                let (ak, bk) = coefficient_pair(k as usize);
                // SAFETY: the schedule owns index k on this thread.
                unsafe {
                    a.set(k as usize, ak);
                    b.set(k as usize, bk);
                }
                k += st;
            }
        },
    );
}

/// The run method join point `Series.run` (M2M refactor).
fn series_run(n: usize, a: SyncSlice<'_, f64>, b: SyncSlice<'_, f64>) {
    aomp_weaver::call("Series.run", || {
        do_coefficients(0, n as i64, 1, a, b);
    });
}

/// The concrete aspect: a combined parallel + for module.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelSeries")
        .bind(
            Pointcut::call("Series.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Series.doCoefficients"),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .build()
}

/// Run the AOmp kernel for `n` coefficients on `threads` threads.
pub fn run(n: usize, threads: usize) -> SeriesResult {
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    {
        let a_s = SyncSlice::tracked(&mut a, "series.a");
        let b_s = SyncSlice::tracked(&mut b, "series.b");
        Weaver::global().with_deployed(aspect(threads), || series_run(n, a_s, b_s));
    }
    SeriesResult { coeffs: [a, b] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unplugged_run_is_sequential() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        {
            let a_s = SyncSlice::new(&mut a);
            let b_s = SyncSlice::new(&mut b);
            series_run(16, a_s, b_s);
        }
        let s = crate::series::seq::run(16);
        assert_eq!(a, s.coeffs[0]);
        assert_eq!(b, s.coeffs[1]);
    }
}
