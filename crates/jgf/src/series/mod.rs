//! JGF Series: the first `n` Fourier coefficients of f(x) = (x+1)^x on
//! the interval [0, 2], each computed by trapezoid integration —
//! embarrassingly parallel over coefficients.
//!
//! Parallelisation (Table 2): M2FOR + M2M, then `PR, FOR (block)`.

pub mod aomp;
pub mod mt;
pub mod seq;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};

/// Integration steps per coefficient (the JGF constant).
pub const INTEGRATION_STEPS: usize = 1000;

/// Coefficient count per preset (JGF: A = 10,000; B = 100,000 — scaled
/// down ×10 to fit a single-core container while keeping the same
/// compute-bound behaviour).
pub fn coefficients_for(size: Size) -> usize {
    match size {
        Size::Small => 64,
        Size::A => 1_000,
        Size::B => 10_000,
    }
}

/// Result: the cosine (a_k) and sine (b_k) coefficient arrays.
pub struct SeriesResult {
    /// `coeffs[0][k] = a_k`, `coeffs[1][k] = b_k`.
    pub coeffs: [Vec<f64>; 2],
}

/// The function under analysis: (x+1)^x, optionally multiplied by
/// cos(ω_n·x) (`select == 1`) or sin(ω_n·x) (`select == 2`) — JGF's
/// `thefunction`.
#[inline]
pub fn the_function(x: f64, omegan: f64, select: u8) -> f64 {
    match select {
        0 => (x + 1.0).powf(x),
        1 => (x + 1.0).powf(x) * (omegan * x).cos(),
        _ => (x + 1.0).powf(x) * (omegan * x).sin(),
    }
}

/// Trapezoid integration over [x0, x1] with `nsteps` intervals, as in
/// JGF's `TrapezoidIntegrate`.
pub fn trapezoid_integrate(x0: f64, x1: f64, nsteps: usize, omegan: f64, select: u8) -> f64 {
    let dx = (x1 - x0) / nsteps as f64;
    let mut x = x0;
    let mut rvalue = the_function(x0, omegan, select) / 2.0;
    for _ in 1..nsteps {
        x += dx;
        rvalue += the_function(x, omegan, select);
    }
    rvalue += the_function(x1, omegan, select) / 2.0;
    rvalue * dx
}

/// Compute coefficient pair `k` (the body of the JGF loop): `k == 0`
/// yields (a0/2, 0); otherwise (a_k, b_k) with ω = π (period 2).
pub fn coefficient_pair(k: usize) -> (f64, f64) {
    let omega = std::f64::consts::PI; // 2π / period, period = 2
    if k == 0 {
        (
            trapezoid_integrate(0.0, 2.0, INTEGRATION_STEPS, 0.0, 0) / 2.0,
            0.0,
        )
    } else {
        let omegan = omega * k as f64;
        (
            trapezoid_integrate(0.0, 2.0, INTEGRATION_STEPS, omegan, 1),
            trapezoid_integrate(0.0, 2.0, INTEGRATION_STEPS, omegan, 2),
        )
    }
}

/// JGF-style validation: the first coefficient pairs against reference
/// values for this integration scheme.
pub fn validate(result: &SeriesResult) -> bool {
    let (a0, _) = (result.coeffs[0][0], result.coeffs[1][0]);
    // a0 = (1/2)∫(x+1)^x dx over [0,2] ≈ 2.8738 for the 1000-step
    // trapezoid rule; b0 is identically 0. Also require a_k, b_k bounded.
    (a0 - 2.874).abs() < 2e-2
        && result.coeffs[1][0] == 0.0
        && result.coeffs[0]
            .iter()
            .chain(result.coeffs[1].iter())
            .all(|v| v.is_finite() && v.abs() < 10.0)
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "Series",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 1),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Block), 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_with_zero_omega_matches_plain() {
        let v = trapezoid_integrate(0.0, 1.0, 100, 0.0, 1);
        let direct = trapezoid_integrate(0.0, 1.0, 100, 0.0, 0);
        assert!((v - direct).abs() < 1e-12);
    }

    #[test]
    fn a0_matches_reference() {
        let (a0, b0) = coefficient_pair(0);
        assert!((a0 - 2.874).abs() < 2e-2, "a0={a0}");
        assert_eq!(b0, 0.0);
    }

    #[test]
    fn coefficients_decay() {
        // Fourier coefficients of a smooth-ish function decay with k.
        let (a1, _) = coefficient_pair(1);
        let (a20, _) = coefficient_pair(20);
        assert!(a1.abs() > a20.abs());
    }

    #[test]
    fn variants_agree_bitwise_and_validate() {
        let n = coefficients_for(Size::Small);
        let s = seq::run(n);
        assert!(validate(&s));
        for t in [1, 2, 4] {
            let m = mt::run(n, t);
            let a = aomp::run(n, t);
            assert!(validate(&m), "mt t={t}");
            assert!(validate(&a), "aomp t={t}");
            assert_eq!(m.coeffs[0], s.coeffs[0], "mt a t={t}");
            assert_eq!(m.coeffs[1], s.coeffs[1], "mt b t={t}");
            assert_eq!(a.coeffs[0], s.coeffs[0], "aomp a t={t}");
            assert_eq!(a.coeffs[1], s.coeffs[1], "aomp b t={t}");
        }
    }
}
