//! Sequential Series: the base program with the coefficient loop already
//! refactored into a for method (M2FOR).

use super::{coefficient_pair, SeriesResult};

/// The for method: compute coefficient pairs `start..end` (step `step`)
/// into the output arrays.
pub fn do_coefficients(start: i64, end: i64, step: i64, a: &mut [f64], b: &mut [f64]) {
    let mut k = start;
    while k < end {
        let (ak, bk) = coefficient_pair(k as usize);
        a[k as usize] = ak;
        b[k as usize] = bk;
        k += step;
    }
}

/// Run the sequential kernel for `n` coefficients.
pub fn run(n: usize) -> SeriesResult {
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    do_coefficients(0, n as i64, 1, &mut a, &mut b);
    SeriesResult { coeffs: [a, b] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_range_fills_only_that_range() {
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        do_coefficients(2, 5, 1, &mut a, &mut b);
        assert_eq!(a[0], 0.0);
        assert_ne!(a[3], 0.0);
        assert_eq!(a[6], 0.0);
    }
}
