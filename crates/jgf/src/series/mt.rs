//! Hand-threaded Series, JGF-MT style: manual block distribution of the
//! coefficient range across explicitly spawned threads.

use super::{coefficient_pair, SeriesResult};
use crate::shared::SyncSlice;

fn worker(a: SyncSlice<'_, f64>, b: SyncSlice<'_, f64>, n: usize, id: usize, nthreads: usize) {
    let per = n / nthreads;
    let rem = n % nthreads;
    let lo = id * per + id.min(rem);
    let hi = lo + per + usize::from(id < rem);
    for k in lo..hi {
        let (ak, bk) = coefficient_pair(k);
        // SAFETY: index k belongs to this thread's block only.
        unsafe {
            a.set(k, ak);
            b.set(k, bk);
        }
    }
}

/// Run the JGF-MT kernel for `n` coefficients on `threads` threads.
pub fn run(n: usize, threads: usize) -> SeriesResult {
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    {
        let a_s = SyncSlice::new(&mut a);
        let b_s = SyncSlice::new(&mut b);
        std::thread::scope(|s| {
            for id in 1..threads {
                s.spawn(move || worker(a_s, b_s, n, id, threads));
            }
            worker(a_s, b_s, n, 0, threads);
        });
    }
    SeriesResult { coeffs: [a, b] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slot_filled() {
        let r = run(33, 4);
        assert!(r.coeffs[0].iter().all(|&v| v != 0.0));
    }
}
