//! AOmpLib-style RayTracer: cyclic `@For` over scanlines with the
//! checksum in a `@ThreadLocalField`, reduced at a master point —
//! Table 2's `PR, FOR (cyclic), TLF`.

use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use super::scene::{render_line, Scene};
use super::RayResult;

struct Render<'a> {
    scene: &'a Scene,
    /// `@ThreadLocalField`: per-thread checksum.
    checksum_tlf: ThreadLocalField<u64>,
    total: Mutex<u64>,
}

/// The for method join point `RayTracer.renderLines`.
fn render_lines(r: &Render<'_>, start: i64, end: i64, step: i64) {
    aomp_weaver::call_for(
        "RayTracer.renderLines",
        LoopRange::new(start, end, step),
        |lo, hi, st| {
            let mut local = 0u64;
            let mut y = lo;
            while y < hi {
                local += render_line(r.scene, y as usize);
                y += st;
            }
            r.checksum_tlf.update_or_init(|| 0, |v| *v += local);
        },
    );
}

/// `@Reduce` point: master folds the thread-local checksums.
fn reduce_checksum(r: &Render<'_>) {
    aomp_weaver::call("RayTracer.reduceChecksum", || {
        let sum: u64 = r.checksum_tlf.drain_locals().into_iter().sum();
        *r.total.lock() += sum;
    });
}

/// The render method join point `RayTracer.render`.
fn render(r: &Render<'_>) {
    aomp_weaver::call("RayTracer.render", || {
        render_lines(r, 0, r.scene.height as i64, 1);
        reduce_checksum(r);
    });
}

/// The concrete aspect.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelRayTracer")
        .bind(
            Pointcut::call("RayTracer.render"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("RayTracer.renderLines"),
            Mechanism::for_loop(Schedule::StaticCyclic),
        )
        .bind(
            Pointcut::call("RayTracer.renderLines"),
            Mechanism::barrier_after(),
        )
        .bind(
            Pointcut::call("RayTracer.reduceChecksum"),
            Mechanism::master(),
        )
        .build()
}

/// Render on `threads` threads.
pub fn run(scene: &Scene, threads: usize) -> RayResult {
    let r = Render {
        scene,
        checksum_tlf: ThreadLocalField::new(0),
        total: Mutex::new(0),
    };
    Weaver::global().with_deployed(aspect(threads), || render(&r));
    let checksum = *r.total.lock();
    RayResult { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unplugged_matches_seq() {
        let scene = Scene::standard(16);
        let r = Render {
            scene: &scene,
            checksum_tlf: ThreadLocalField::new(0),
            total: Mutex::new(0),
        };
        render(&r);
        assert_eq!(*r.total.lock(), crate::raytracer::seq::run(&scene).checksum);
    }
}
