//! Sequential RayTracer with the scanline loop as a for method (M2FOR).

use super::scene::{render_line, Scene};
use super::RayResult;

/// The for method: render scanlines `start..end` (step `step`),
/// accumulating the checksum.
pub fn render_lines(start: i64, end: i64, step: i64, scene: &Scene, checksum: &mut u64) {
    let mut y = start;
    while y < end {
        *checksum += render_line(scene, y as usize);
        y += step;
    }
}

/// Render the whole image sequentially.
pub fn run(scene: &Scene) -> RayResult {
    let mut checksum = 0u64;
    render_lines(0, scene.height as i64, 1, scene, &mut checksum);
    RayResult { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_render_is_partial() {
        let scene = Scene::standard(16);
        let full = run(&scene).checksum;
        let mut half = 0u64;
        render_lines(0, 8, 1, &scene, &mut half);
        assert!(half < full);
        assert!(half > 0);
    }
}
