//! JGF RayTracer: renders a sphere scene at n×n resolution and checksums
//! the pixel values. Scanlines are independent, distributed cyclically;
//! the checksum is the JGF validation value and, in the AOmp version, a
//! `@ThreadLocalField` reduced at the end — Table 2's
//! `PR, FOR (cyclic), TLF` with a single M2FOR refactoring.

pub mod aomp;
pub mod mt;
pub mod scene;
pub mod seq;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
pub use scene::{render_line, Scene, Sphere, Vec3};

/// Image edge length per preset (JGF: A = 150, B = 500).
pub fn resolution_for(size: Size) -> usize {
    match size {
        Size::Small => 24,
        Size::A => 150,
        Size::B => 500,
    }
}

/// Build the standard scene for a given resolution.
pub fn generate(size: Size) -> Scene {
    Scene::standard(resolution_for(size))
}

/// Result: the pixel checksum (JGF validates this sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RayResult {
    /// Σ of the 8-bit RGB channel values over all pixels.
    pub checksum: u64,
}

/// Validation: non-trivial image (some lit pixels, not saturated).
pub fn validate(scene: &Scene, r: &RayResult) -> bool {
    let max = (scene.width * scene.height * 3 * 255) as u64;
    r.checksum > 0 && r.checksum < max
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "RayTracer",
        refactorings: vec![(Refactoring::MoveToForMethod, 1)],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Cyclic), 1),
            (Abstraction::ThreadLocalField, 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_exactly() {
        let scene = generate(Size::Small);
        let s = seq::run(&scene);
        assert!(validate(&scene, &s), "{s:?}");
        for t in [1, 2, 4] {
            assert_eq!(mt::run(&scene, t), s, "mt t={t}");
            assert_eq!(aomp::run(&scene, t), s, "aomp t={t}");
        }
    }

    #[test]
    fn bigger_image_bigger_checksum() {
        let small = Scene::standard(16);
        let large = Scene::standard(32);
        assert!(seq::run(&large).checksum > seq::run(&small).checksum);
    }
}
