//! Hand-threaded RayTracer, JGF-MT style: cyclic scanline distribution,
//! per-thread checksum slots summed by the spawner.

use super::scene::{render_line, Scene};
use super::RayResult;
use crate::shared::SyncSlice;

fn worker(scene: &Scene, sums: SyncSlice<'_, u64>, id: usize, nthreads: usize) {
    let mut local = 0u64;
    let mut y = id;
    while y < scene.height {
        local += render_line(scene, y);
        y += nthreads;
    }
    // SAFETY: per-thread slot.
    unsafe { sums.set(id, local) };
}

/// Render on `threads` threads.
pub fn run(scene: &Scene, threads: usize) -> RayResult {
    let mut sums = vec![0u64; threads];
    {
        let s_s = SyncSlice::new(&mut sums);
        std::thread::scope(|s| {
            for id in 1..threads {
                s.spawn(move || worker(scene, s_s, id, threads));
            }
            worker(scene, s_s, 0, threads);
        });
    }
    RayResult {
        checksum: sums.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mt_matches_seq() {
        let scene = Scene::standard(16);
        let s = crate::raytracer::seq::run(&scene);
        for t in [1, 2, 5] {
            assert_eq!(run(&scene, t), s, "t={t}");
        }
    }
}
