//! The ray-tracing core: vectors, spheres, shading and per-scanline
//! rendering. Deterministic pure functions — every pixel depends only on
//! the scene, so scanlines parallelise trivially.

/// A 3-vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean length.
    pub fn len(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    pub fn normalized(self) -> Vec3 {
        let l = self.len();
        Vec3::new(self.x / l, self.y / l, self.z / l)
    }

    /// Component-wise scale.
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Component-wise product (colour modulation).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

/// A sphere with Phong material parameters.
#[derive(Debug, Clone)]
pub struct Sphere {
    /// Centre.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
    /// Base colour (0..1 per channel).
    pub color: Vec3,
    /// Diffuse coefficient.
    pub kd: f64,
    /// Specular coefficient.
    pub ks: f64,
    /// Specular exponent.
    pub shine: f64,
    /// Reflectivity (0 = matte).
    pub kr: f64,
}

impl Sphere {
    /// Ray–sphere intersection: smallest positive t, or None.
    pub fn intersect(&self, origin: Vec3, dir: Vec3) -> Option<f64> {
        let oc = origin - self.center;
        let b = 2.0 * oc.dot(dir);
        let c = oc.dot(oc) - self.radius * self.radius;
        let disc = b * b - 4.0 * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t1 = (-b - sq) * 0.5;
        if t1 > 1e-6 {
            return Some(t1);
        }
        let t2 = (-b + sq) * 0.5;
        if t2 > 1e-6 {
            return Some(t2);
        }
        None
    }
}

/// The renderable scene: spheres, one point light, simple pinhole camera.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Scene geometry.
    pub spheres: Vec<Sphere>,
    /// Point light position.
    pub light: Vec3,
    /// Camera position.
    pub eye: Vec3,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Ambient light level.
    pub ambient: f64,
    /// Maximum reflection bounces.
    pub max_depth: u32,
}

impl Scene {
    /// The JGF-style standard scene: a grid of 64 shiny spheres above a
    /// large ground sphere.
    pub fn standard(resolution: usize) -> Scene {
        let mut spheres = Vec::new();
        for ix in 0..4 {
            for iy in 0..4 {
                for iz in 0..4 {
                    let center = Vec3::new(
                        -6.0 + 4.0 * ix as f64,
                        -6.0 + 4.0 * iy as f64,
                        -20.0 - 4.0 * iz as f64,
                    );
                    let color = Vec3::new(
                        0.3 + 0.7 * (ix as f64 / 3.0),
                        0.3 + 0.7 * (iy as f64 / 3.0),
                        0.3 + 0.7 * (iz as f64 / 3.0),
                    );
                    spheres.push(Sphere {
                        center,
                        radius: 1.4,
                        color,
                        kd: 0.7,
                        ks: 0.3,
                        shine: 15.0,
                        kr: 0.25,
                    });
                }
            }
        }
        // Ground.
        spheres.push(Sphere {
            center: Vec3::new(0.0, -10010.0, -20.0),
            radius: 10000.0,
            color: Vec3::new(0.8, 0.8, 0.8),
            kd: 0.9,
            ks: 0.0,
            shine: 1.0,
            kr: 0.05,
        });
        Scene {
            spheres,
            light: Vec3::new(20.0, 30.0, 10.0),
            eye: Vec3::new(0.0, 0.0, 10.0),
            width: resolution,
            height: resolution,
            ambient: 0.12,
            max_depth: 3,
        }
    }

    /// Nearest intersection along a ray.
    fn nearest(&self, origin: Vec3, dir: Vec3) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.spheres.iter().enumerate() {
            if let Some(t) = s.intersect(origin, dir) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        best
    }

    /// Is the point shadowed with respect to the light?
    fn shadowed(&self, point: Vec3) -> bool {
        let to_light = self.light - point;
        let dist = to_light.len();
        let dir = to_light.scale(1.0 / dist);
        self.spheres
            .iter()
            .any(|s| s.intersect(point, dir).is_some_and(|t| t < dist))
    }

    /// Trace a ray and return its colour.
    pub fn trace(&self, origin: Vec3, dir: Vec3, depth: u32) -> Vec3 {
        match self.nearest(origin, dir) {
            None => {
                // Sky gradient.
                let t = 0.5 * (dir.y + 1.0);
                Vec3::new(0.1, 0.15, 0.3).scale(1.0 - t) + Vec3::new(0.4, 0.55, 0.8).scale(t)
            }
            Some((i, t)) => {
                let s = &self.spheres[i];
                let hit = origin + dir.scale(t);
                let normal = (hit - s.center).normalized();
                let mut color = s.color.scale(self.ambient);
                if !self.shadowed(hit + normal.scale(1e-4)) {
                    let l = (self.light - hit).normalized();
                    let diff = normal.dot(l).max(0.0);
                    color = color + s.color.scale(s.kd * diff);
                    // Blinn-Phong specular.
                    let h = (l - dir).normalized();
                    let spec = normal.dot(h).max(0.0).powf(s.shine);
                    color = color + Vec3::new(1.0, 1.0, 1.0).scale(s.ks * spec);
                }
                if s.kr > 0.0 && depth < self.max_depth {
                    let refl = dir - normal.scale(2.0 * dir.dot(normal));
                    let rc = self.trace(hit + normal.scale(1e-4), refl.normalized(), depth + 1);
                    color = color + rc.scale(s.kr);
                }
                color
            }
        }
    }

    /// Render pixel (x, y) to clamped 8-bit channels.
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let u = (x as f64 + 0.5) / self.width as f64 * 2.0 - 1.0;
        let v = 1.0 - (y as f64 + 0.5) / self.height as f64 * 2.0;
        let dir = Vec3::new(u, v, -2.0).normalized();
        let c = self.trace(self.eye, dir, 0);
        let q = |f: f64| (f.clamp(0.0, 1.0) * 255.0) as u8;
        [q(c.x), q(c.y), q(c.z)]
    }
}

/// Render one scanline and return its checksum contribution (Σ channel
/// values) — the JGF per-line accumulation.
pub fn render_line(scene: &Scene, y: usize) -> u64 {
    let mut sum = 0u64;
    for x in 0..scene.width {
        let [r, g, b] = scene.pixel(x, y);
        sum += u64::from(r) + u64::from(g) + u64::from(b);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!((a + b).x, 5.0);
        assert_eq!((b - a).z, 3.0);
        assert!((Vec3::new(3.0, 4.0, 0.0).len() - 5.0).abs() < 1e-12);
        assert!((Vec3::new(0.0, 0.0, 9.0).normalized().z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_intersection_front_and_miss() {
        let s = Sphere {
            center: Vec3::new(0.0, 0.0, -10.0),
            radius: 1.0,
            color: Vec3::new(1.0, 1.0, 1.0),
            kd: 1.0,
            ks: 0.0,
            shine: 1.0,
            kr: 0.0,
        };
        let t = s
            .intersect(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0))
            .unwrap();
        assert!((t - 9.0).abs() < 1e-9);
        assert!(s
            .intersect(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0))
            .is_none());
    }

    #[test]
    fn intersection_from_inside_returns_far_hit() {
        let s = Sphere {
            center: Vec3::new(0.0, 0.0, 0.0),
            radius: 2.0,
            color: Vec3::new(1.0, 1.0, 1.0),
            kd: 1.0,
            ks: 0.0,
            shine: 1.0,
            kr: 0.0,
        };
        let t = s
            .intersect(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0))
            .unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scanlines_are_deterministic() {
        let scene = Scene::standard(16);
        assert_eq!(render_line(&scene, 3), render_line(&scene, 3));
    }

    #[test]
    fn standard_scene_has_65_spheres() {
        assert_eq!(Scene::standard(8).spheres.len(), 65);
    }
}
