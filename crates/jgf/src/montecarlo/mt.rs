//! Hand-threaded MonteCarlo, JGF-MT style: cyclic distribution of runs
//! over explicitly spawned threads.

use super::{finish, simulate_run, McData, McResult};
use crate::shared::SyncSlice;

fn worker(d: &McData, results: SyncSlice<'_, f64>, id: usize, nthreads: usize) {
    let mut k = id;
    while k < d.nruns {
        // SAFETY: run k is owned by thread k % nthreads.
        unsafe { results.set(k, simulate_run(d, k)) };
        k += nthreads;
    }
}

/// Run on `threads` threads.
pub fn run(d: &McData, threads: usize) -> McResult {
    let mut results = vec![0.0; d.nruns];
    {
        let r_s = SyncSlice::new(&mut results);
        std::thread::scope(|s| {
            for id in 1..threads {
                s.spawn(move || worker(d, r_s, id, threads));
            }
            worker(d, r_s, 0, threads);
        });
    }
    finish(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::montecarlo::generate;

    #[test]
    fn mt_matches_seq() {
        let d = generate(Size::Small);
        assert_eq!(run(&d, 3).results, crate::montecarlo::seq::run(&d).results);
    }
}
