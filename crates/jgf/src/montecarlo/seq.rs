//! Sequential MonteCarlo with the run loop as a for method (M2FOR).

use super::{finish, simulate_run, McData, McResult};

/// The for method: simulate runs `start..end` into the slot array.
pub fn run_serials(start: i64, end: i64, step: i64, d: &McData, results: &mut [f64]) {
    let mut k = start;
    while k < end {
        results[k as usize] = simulate_run(d, k as usize);
        k += step;
    }
}

/// Run all simulations sequentially.
pub fn run(d: &McData) -> McResult {
    let mut results = vec![0.0; d.nruns];
    run_serials(0, d.nruns as i64, 1, d, &mut results);
    finish(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::montecarlo::generate;

    #[test]
    fn fills_every_slot() {
        let d = generate(Size::Small);
        let r = run(&d);
        assert!(r.results.iter().all(|v| *v != 0.0));
    }
}
