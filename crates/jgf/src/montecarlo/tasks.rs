//! MonteCarlo with `@FutureTask` block decomposition — exercising the
//! paper's task constructs (Table 1: `@Task`, `@TaskWait`, `@FutureTask`,
//! `@FutureResult`) on a real workload.
//!
//! The run range is cut into fixed-size blocks; each block becomes a
//! future task (a spawned activity computing a `Vec<f64>` of per-run
//! results); the collector `get()`s each future — the `@FutureResult`
//! synchronisation point — and scatters the values into the slot array.
//! Results are bitwise identical to the sequential version because each
//! run is seeded by its own index.

use std::sync::Arc;

use aomp::task::{spawn_future, FutureTask};

use super::{finish, simulate_run, McData, McResult};

/// Runs per spawned task.
pub const BLOCK: usize = 32;

/// Run the simulation with one future task per block of runs.
pub fn run(d: &McData) -> McResult {
    // Tasks are 'static activities (the paper's model: a new parallel
    // activity per @Task), so the problem data is shared via Arc.
    let d = Arc::new(d.clone());
    let nblocks = d.nruns.div_ceil(BLOCK);
    let futures: Vec<(usize, FutureTask<Vec<f64>>)> = (0..nblocks)
        .map(|b| {
            let d = Arc::clone(&d);
            let lo = b * BLOCK;
            let hi = ((b + 1) * BLOCK).min(d.nruns);
            (
                lo,
                spawn_future(move || (lo..hi).map(|k| simulate_run(&d, k)).collect()),
            )
        })
        .collect();
    let mut results = vec![0.0; d.nruns];
    for (lo, fut) in futures {
        // @FutureResult getter: blocks until the producing activity set it.
        for (off, v) in fut.get().into_iter().enumerate() {
            results[lo + off] = v;
        }
    }
    finish(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::montecarlo::{generate, validate};

    #[test]
    fn task_variant_matches_seq_bitwise() {
        let d = generate(Size::Small);
        let s = crate::montecarlo::seq::run(&d);
        let t = run(&d);
        assert_eq!(t.results, s.results);
        assert_eq!(t.avg, s.avg);
        assert!(validate(&d, &t));
    }

    #[test]
    fn handles_non_multiple_block_counts() {
        let mut d = generate(Size::Small);
        d.nruns = BLOCK + 7;
        let s = crate::montecarlo::seq::run(&d);
        assert_eq!(run(&d).results, s.results);
    }
}
