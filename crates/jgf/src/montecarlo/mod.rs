//! JGF MonteCarlo: financial Monte Carlo simulation — derive drift and
//! volatility from a historical rate path, then simulate many geometric
//! Brownian price paths and average their expected return.
//!
//! Each simulation run is independent and seeded by its run index, so
//! results are bitwise identical regardless of which thread executes
//! which run — results land in a per-run slot array and are summed
//! sequentially, exactly like the JGF `results` vector.
//!
//! Parallelisation (Table 2): `PR, FOR (cyclic)`.

pub mod aomp;
pub mod mt;
pub mod nr;
pub mod seq;
pub mod tasks;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path length in timesteps (the JGF rate path length).
pub const PATH_LENGTH: usize = 1000;

/// Simulation runs per preset (JGF: A = 2000, B = 60000 — B scaled ×0.2
/// for the single-core container).
pub fn runs_for(size: Size) -> usize {
    match size {
        Size::Small => 64,
        Size::A => 2_000,
        Size::B => 12_000,
    }
}

/// Problem definition: drift and volatility estimated from a synthetic
/// historical path (JGF reads `hitData`; we synthesise an equivalent
/// deterministic series — see DESIGN.md substitutions).
#[derive(Clone)]
pub struct McData {
    /// Expected return rate (drift) per unit time.
    pub expected_return_rate: f64,
    /// Volatility per sqrt(unit time).
    pub volatility: f64,
    /// Timestep.
    pub dt: f64,
    /// Initial price.
    pub s0: f64,
    /// Number of Monte Carlo runs.
    pub nruns: usize,
    /// Base RNG seed; run `k` uses `seed + k`.
    pub seed: u64,
}

/// Synthesise the historical series and estimate its parameters, as JGF's
/// `returnPath`/`volatility` computations do.
pub fn generate(size: Size) -> McData {
    let mut rng = StdRng::seed_from_u64(0xca11_0ca7);
    let dt = 1.0 / PATH_LENGTH as f64;
    let (mu_true, sigma_true, s0) = (0.1, 0.3, 100.0);
    // Synthetic historical GBM path.
    let mut path = Vec::with_capacity(PATH_LENGTH);
    let mut s = s0;
    for _ in 0..PATH_LENGTH {
        let z = gaussian(&mut rng);
        s *= ((mu_true - 0.5 * sigma_true * sigma_true) * dt + sigma_true * dt.sqrt() * z).exp();
        path.push(s);
    }
    // Estimate log-return mean and variance (JGF's ReturnPath logic).
    let logret: Vec<f64> = path.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
    let mean = logret.iter().sum::<f64>() / logret.len() as f64;
    let var =
        logret.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (logret.len() - 1) as f64;
    let volatility = (var / dt).sqrt();
    let expected_return_rate = mean / dt + 0.5 * volatility * volatility;
    McData {
        expected_return_rate,
        volatility,
        dt,
        s0,
        nruns: runs_for(size),
        seed: 0x600d_5eed,
    }
}

/// One standard Gaussian draw (Box–Muller).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Simulate run `k`: a fresh GBM path using the estimated parameters;
/// returns the path's expected return rate estimate (the JGF
/// `PriceStock` result).
pub fn simulate_run(d: &McData, k: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(d.seed.wrapping_add(k as u64));
    let drift = (d.expected_return_rate - 0.5 * d.volatility * d.volatility) * d.dt;
    let diffusion = d.volatility * d.dt.sqrt();
    let mut sum_logret = 0.0;
    for _ in 0..PATH_LENGTH {
        let step = drift + diffusion * gaussian(&mut rng);
        sum_logret += step;
    }
    // Per-run expected return rate estimate.
    sum_logret / (PATH_LENGTH as f64 * d.dt) + 0.5 * d.volatility * d.volatility
}

/// Result: per-run values plus their average.
pub struct McResult {
    /// Per-run expected return estimates, indexed by run.
    pub results: Vec<f64>,
    /// Mean over runs — the JGF `avgExpectedReturnRate`.
    pub avg: f64,
}

/// Fold the per-run slots into the average (sequential order → bitwise
/// determinism across variants).
pub fn finish(results: Vec<f64>) -> McResult {
    let avg = results.iter().sum::<f64>() / results.len() as f64;
    McResult { results, avg }
}

/// Validation: the Monte Carlo average recovers the estimated drift
/// within statistical tolerance.
pub fn validate(d: &McData, r: &McResult) -> bool {
    r.avg.is_finite() && (r.avg - d.expected_return_rate).abs() < 0.05 + 0.5 * d.volatility
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "MonteCarlo",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 1),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Cyclic), 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_estimates_are_close_to_truth() {
        let d = generate(Size::Small);
        assert!((d.volatility - 0.3).abs() < 0.05, "vol={}", d.volatility);
        assert!(
            (d.expected_return_rate - 0.1).abs() < 0.35,
            "mu={}",
            d.expected_return_rate
        );
    }

    #[test]
    fn runs_are_deterministic_per_index() {
        let d = generate(Size::Small);
        assert_eq!(simulate_run(&d, 7), simulate_run(&d, 7));
        assert_ne!(simulate_run(&d, 7), simulate_run(&d, 8));
    }

    #[test]
    fn variants_agree_bitwise_and_validate() {
        let d = generate(Size::Small);
        let s = seq::run(&d);
        assert!(validate(&d, &s), "avg={}", s.avg);
        for t in [1, 2, 4] {
            let m = mt::run(&d, t);
            let a = aomp::run(&d, t);
            let n = nr::run(&d, t);
            assert_eq!(m.results, s.results, "mt t={t}");
            assert_eq!(a.results, s.results, "aomp t={t}");
            assert_eq!(n.results, s.results, "nr t={t}");
            assert_eq!(m.avg, s.avg);
            assert_eq!(a.avg, s.avg);
            assert_eq!(n.avg, s.avg);
        }
    }
}
