//! MonteCarlo over replicated shared state (`aomp::nr`) — the results
//! accumulator as a `Replicated` structure instead of a raw shared slice.
//!
//! The JGF code appends each run's result to a shared `results` vector
//! under a lock (the `@Critical` flavour of the accumulator). Here the
//! vector lives behind [`aomp::nr::Replicated`]: every thread *logs* a
//! `Record { k, v }` write operation; combiners batch the log onto
//! per-node replicas. Because each record is keyed by its run index, the
//! final structure is independent of log order and the variant stays
//! bitwise identical to the sequential version — which makes it a good
//! differential oracle for the NR machinery on a real workload.

use aomp::nr::{Dispatch, Replicated};
use aomp::prelude::*;

use super::{finish, simulate_run, McData, McResult};

/// One per-run result heading for the accumulator log.
#[derive(Clone, Debug)]
pub struct Record {
    /// Run index (slot in the results vector).
    pub k: usize,
    /// The run's expected return rate estimate.
    pub v: f64,
}

/// The single-threaded structure being replicated: the JGF `results`
/// vector with index-keyed insertion.
#[derive(Clone)]
pub struct Slots {
    results: Vec<f64>,
}

impl Slots {
    /// An accumulator with `nruns` zeroed slots.
    pub fn new(nruns: usize) -> Self {
        Slots {
            results: vec![0.0; nruns],
        }
    }
}

impl Dispatch for Slots {
    type ReadOp = usize;
    type WriteOp = Record;
    type Response = f64;

    fn dispatch(&self, op: &usize) -> f64 {
        self.results[*op]
    }

    fn dispatch_mut(&mut self, op: &Record) -> f64 {
        self.results[op.k] = op.v;
        op.v
    }
}

/// Run on `threads` threads, accumulating through the replicated store.
pub fn run(d: &McData, threads: usize) -> McResult {
    let repl = Replicated::new(Slots::new(d.nruns));
    let for_c = ForConstruct::new(Schedule::StaticCyclic);
    region::parallel_with(RegionConfig::new().threads(threads), || {
        for_c.execute(LoopRange::new(0, d.nruns as i64, 1), |lo, hi, st| {
            let mut k = lo;
            while k < hi {
                repl.execute(Record {
                    k: k as usize,
                    v: simulate_run(d, k as usize),
                });
                k += st;
            }
        });
    });
    repl.sync();
    finish(repl.read_direct(|s| s.results.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::montecarlo::{generate, validate};

    #[test]
    fn nr_matches_seq_bitwise() {
        let d = generate(Size::Small);
        let s = crate::montecarlo::seq::run(&d);
        for t in [1, 2, 4] {
            let r = run(&d, t);
            assert_eq!(r.results, s.results, "nr t={t}");
            assert_eq!(r.avg, s.avg, "nr t={t}");
            assert!(validate(&d, &r));
        }
    }

    #[test]
    fn replicated_reads_linearize_with_writes() {
        // A read issued after a write from the same thread must observe
        // it (reads catch the replica up to the log tail at invocation).
        let d = generate(Size::Small);
        let repl = Replicated::new(Slots::new(d.nruns));
        let v = simulate_run(&d, 3);
        repl.execute(Record { k: 3, v });
        assert_eq!(repl.execute_ro(&3usize), v);
    }

    /// A shared tally that is only sound under mutual exclusion —
    /// exercised through the `#[replicated]` annotation macro.
    struct Tally(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Tally {}
    impl Tally {
        fn bump(&self) -> u64 {
            unsafe {
                *self.0.get() += 1;
                *self.0.get()
            }
        }
        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }

    #[aomp_macros::replicated(id = "jgf.mc.tally")]
    fn bump_tally(t: &Tally) -> u64 {
        t.bump()
    }

    #[test]
    fn replicated_macro_serialises_sections() {
        let tally = Tally(std::cell::UnsafeCell::new(0));
        let tally = &tally;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..250 {
                        bump_tally(tally);
                    }
                });
            }
        });
        assert_eq!(tally.get(), 1000);
    }
}
