//! AOmpLib-style MonteCarlo: the run loop exposed as a for method with a
//! cyclic schedule — `PR, FOR (cyclic)`.

use aomp::prelude::*;
use aomp_weaver::prelude::*;

use super::{finish, simulate_run, McData, McResult};
use crate::shared::SyncSlice;

/// The for method join point `MonteCarlo.runSerials`.
fn run_serials(start: i64, end: i64, step: i64, d: &McData, results: SyncSlice<'_, f64>) {
    aomp_weaver::call_for(
        "MonteCarlo.runSerials",
        LoopRange::new(start, end, step),
        |lo, hi, st| {
            let mut k = lo;
            while k < hi {
                // SAFETY: the cyclic schedule owns run k on this thread.
                unsafe { results.set(k as usize, simulate_run(d, k as usize)) };
                k += st;
            }
        },
    );
}

/// The run method join point `MonteCarlo.run`.
fn mc_run(d: &McData, results: SyncSlice<'_, f64>) {
    aomp_weaver::call("MonteCarlo.run", || {
        run_serials(0, d.nruns as i64, 1, d, results);
    });
}

/// The concrete aspect: parallel region + cyclic for.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelMonteCarlo")
        .bind(
            Pointcut::call("MonteCarlo.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("MonteCarlo.runSerials"),
            Mechanism::for_loop(Schedule::StaticCyclic),
        )
        .build()
}

/// Run on `threads` threads.
pub fn run(d: &McData, threads: usize) -> McResult {
    let mut results = vec![0.0; d.nruns];
    {
        let r_s = SyncSlice::tracked(&mut results, "montecarlo.results");
        Weaver::global().with_deployed(aspect(threads), || mc_run(d, r_s));
    }
    finish(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::montecarlo::generate;

    #[test]
    fn unplugged_matches_seq() {
        let d = generate(Size::Small);
        let mut results = vec![0.0; d.nruns];
        {
            let r_s = SyncSlice::new(&mut results);
            mc_run(&d, r_s);
        }
        assert_eq!(results, crate::montecarlo::seq::run(&d).results);
    }
}
