//! Shared-memory helpers for hand-threaded and AOmp kernels — re-exported
//! from [`aomp::cell`], where they live so every AOmp-based crate (the
//! evolutionary-computation and graph case studies included) can use the
//! same schedule-disciplined wrappers.

pub use aomp::cell::{SyncSlice, SyncVec};
