//! Sequential SOR with the loop refactored into a for method (M2FOR):
//! `sor_rows(start, end, step)` relaxes the strided row range.

use super::{relax_row, Grid};

/// The for method: relax rows `start, start+step, …` up to `end`.
pub fn sor_rows(start: i64, end: i64, step: i64, g: &mut [f64], n: usize) {
    let mut i = start;
    while i < end {
        relax_row(g, n, i as usize);
        i += step;
    }
}

/// Run `iterations` full red–black sweeps sequentially.
pub fn run(grid: &Grid, iterations: usize) -> Grid {
    let mut out = grid.clone();
    let n = out.n;
    for p in 0..2 * iterations {
        // Rows 1+(p%2), 3+(p%2), … — the red/black half sweep.
        sor_rows(1 + (p % 2) as i64, (n - 1) as i64, 2, &mut out.g, n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::sor::{generate, gtotal};

    #[test]
    fn zero_iterations_is_identity() {
        let grid = generate(Size::Small);
        let r = run(&grid, 0);
        assert_eq!(r.g, grid.g);
    }

    #[test]
    fn deterministic() {
        let grid = generate(Size::Small);
        assert_eq!(gtotal(&run(&grid, 5)), gtotal(&run(&grid, 5)));
    }
}
