//! Hand-threaded SOR, JGF-MT style: one thread team for the whole
//! relaxation, manual block distribution of the half-sweep rows and an
//! explicit barrier between half sweeps.

use std::sync::Barrier;

use super::{relax_row_sync, Grid};
use crate::shared::SyncSlice;

fn worker(
    g: SyncSlice<'_, f64>,
    n: usize,
    iterations: usize,
    id: usize,
    nthreads: usize,
    barrier: &Barrier,
) {
    for p in 0..2 * iterations {
        // Rows of this half sweep (same parity): 1+(p%2), +2, …
        let rows: Vec<usize> = (1 + p % 2..n - 1).step_by(2).collect();
        let per = rows.len() / nthreads;
        let rem = rows.len() % nthreads;
        let lo = id * per + id.min(rem);
        let hi = lo + per + usize::from(id < rem);
        for &i in &rows[lo..hi] {
            relax_row_sync(&g, n, i);
        }
        barrier.wait();
    }
}

/// Run `iterations` red–black sweeps on `threads` threads.
pub fn run(grid: &Grid, iterations: usize, threads: usize) -> Grid {
    let mut out = grid.clone();
    let n = out.n;
    {
        let g_s = SyncSlice::new(&mut out.g);
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for id in 1..threads {
                let barrier = &barrier;
                s.spawn(move || worker(g_s, n, iterations, id, threads, barrier));
            }
            worker(g_s, n, iterations, 0, threads, &barrier);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::sor::generate;

    #[test]
    fn mt_matches_seq() {
        let grid = generate(Size::Small);
        let s = crate::sor::seq::run(&grid, 4);
        for t in [1, 2, 3] {
            assert_eq!(run(&grid, 4, t).g, s.g, "t={t}");
        }
    }
}
