//! JGF SOR: successive over-relaxation on an n×n grid (ω = 1.25).
//!
//! The parallel JGF kernel uses red–black row ordering: each relaxation
//! step becomes two half-sweeps over rows of alternating parity with a
//! barrier between them, so rows updated concurrently never neighbour
//! each other. All three variants here (seq / mt / aomp) use the same
//! red–black ordering so their results are bitwise comparable, matching
//! how JGF validates its threaded SOR.
//!
//! Parallelisation (Table 2): M2FOR + M2M, then `PR, FOR (block), BR`.

pub mod aomp;
pub mod mt;
pub mod seq;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relaxation factor, as in JGF.
pub const OMEGA: f64 = 1.25;
/// Full red–black iterations (JGF uses 100).
pub const ITERATIONS: usize = 100;

/// Grid edge length per preset (JGF: A = 1000, B = 1500).
pub fn grid_for(size: Size) -> usize {
    match size {
        Size::Small => 34,
        Size::A => 1000,
        Size::B => 1500,
    }
}

/// A flattened n×n grid.
#[derive(Clone)]
pub struct Grid {
    /// Row-major cells.
    pub g: Vec<f64>,
    /// Edge length.
    pub n: usize,
}

/// Generate the random initial grid, JGF-style.
pub fn generate(size: Size) -> Grid {
    let n = grid_for(size);
    let mut rng = StdRng::seed_from_u64(0x50f2_5eed);
    let g = (0..n * n).map(|_| rng.gen_range(0.0..1.0) * 1e-6).collect();
    Grid { g, n }
}

/// Relax one row segment: the innermost update shared by every variant.
#[inline]
pub fn relax_row(g: &mut [f64], n: usize, i: usize) {
    let omega_over_four = OMEGA * 0.25;
    let one_minus_omega = 1.0 - OMEGA;
    for j in 1..n - 1 {
        let idx = i * n + j;
        g[idx] = omega_over_four * (g[idx - n] + g[idx + n] + g[idx - 1] + g[idx + 1])
            + one_minus_omega * g[idx];
    }
}

/// Relax one row through a shared grid view (element-level accesses, no
/// overlapping `&mut` slices). Bitwise identical to [`relax_row`].
///
/// # Safety contract (discharged by the red–black schedule)
/// Row `i` is owned by the calling thread for the half sweep; rows `i±1`
/// have the other parity and are not written during it.
#[inline]
pub fn relax_row_sync(g: &crate::shared::SyncSlice<'_, f64>, n: usize, i: usize) {
    let omega_over_four = OMEGA * 0.25;
    let one_minus_omega = 1.0 - OMEGA;
    for j in 1..n - 1 {
        let idx = i * n + j;
        // SAFETY: see the schedule contract above.
        unsafe {
            let v = omega_over_four
                * (g.read(idx - n) + g.read(idx + n) + g.read(idx - 1) + g.read(idx + 1))
                + one_minus_omega * g.read(idx);
            g.set(idx, v);
        }
    }
}

/// Sum of all grid cells — the JGF `Gtotal` validation value.
pub fn gtotal(grid: &Grid) -> f64 {
    grid.g.iter().sum()
}

/// Validation: total is finite and equals the sequential reference for
/// the same size (checked by the cross-variant tests); here we check
/// convergence sanity.
pub fn validate(grid: &Grid) -> bool {
    let t = gtotal(grid);
    t.is_finite()
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "SOR",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 1),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::Block), 1),
            (Abstraction::Barrier, 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relax_row_uses_four_neighbours() {
        let n = 4;
        let mut g = vec![1.0; n * n];
        g[1 * n + 1] = 0.0;
        relax_row(&mut g, n, 1);
        // cell (1,1): 1.25/4*(4 neighbours = 4.0) + (1-1.25)*0 = 1.25
        assert!((g[n + 1] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn variants_agree_bitwise() {
        let grid = generate(Size::Small);
        let s = seq::run(&grid, ITERATIONS / 10);
        assert!(validate(&s));
        for t in [1, 2, 4] {
            let m = mt::run(&grid, ITERATIONS / 10, t);
            let a = aomp::run(&grid, ITERATIONS / 10, t);
            assert_eq!(m.g, s.g, "mt t={t}");
            assert_eq!(a.g, s.g, "aomp t={t}");
        }
    }

    #[test]
    fn iterations_change_the_grid() {
        let grid = generate(Size::Small);
        let s = seq::run(&grid, 3);
        assert_ne!(gtotal(&s), gtotal(&grid));
    }
}
