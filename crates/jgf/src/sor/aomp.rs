//! AOmpLib-style SOR: the half-sweep for method work-shared with a block
//! schedule; the `@BarrierAfter` on the for method is the Table 2 `BR`.

use aomp::prelude::*;
use aomp_weaver::prelude::*;

use super::{relax_row_sync, Grid};
use crate::shared::SyncSlice;

/// The for method join point `Sor.sorRows`: relax the strided row range.
fn sor_rows(start: i64, end: i64, step: i64, g: SyncSlice<'_, f64>, n: usize) {
    aomp_weaver::call_for(
        "Sor.sorRows",
        LoopRange::new(start, end, step),
        |lo, hi, st| {
            let mut i = lo;
            while i < hi {
                relax_row_sync(&g, n, i as usize);
                i += st;
            }
        },
    );
}

/// The run method join point `Sor.run`: the p loop over half sweeps.
fn sor_run(g: SyncSlice<'_, f64>, n: usize, iterations: usize) {
    aomp_weaver::call("Sor.run", || {
        for p in 0..2 * iterations {
            sor_rows(1 + (p % 2) as i64, (n - 1) as i64, 2, g, n);
        }
    });
}

/// The concrete aspect: `PR, FOR (block), BR`.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelSor")
        .bind(
            Pointcut::call("Sor.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Sor.sorRows"),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .bind(Pointcut::call("Sor.sorRows"), Mechanism::barrier_after())
        .build()
}

/// Run `iterations` red–black sweeps on `threads` threads.
pub fn run(grid: &Grid, iterations: usize, threads: usize) -> Grid {
    let mut out = grid.clone();
    let n = out.n;
    {
        let g_s = SyncSlice::tracked(&mut out.g, "sor.G");
        Weaver::global().with_deployed(aspect(threads), || sor_run(g_s, n, iterations));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::sor::generate;

    #[test]
    fn unplugged_matches_seq() {
        let grid = generate(Size::Small);
        let mut out = grid.clone();
        let n = out.n;
        {
            let g_s = SyncSlice::new(&mut out.g);
            sor_run(g_s, n, 3);
        }
        assert_eq!(out.g, crate::sor::seq::run(&grid, 3).g);
    }
}
