//! Hand-threaded SparseMatmult, JGF-MT style: the per-thread nonzero
//! ranges (snapped to row boundaries, balanced by nonzero count) are
//! precomputed into the base code, as JGF's `lowsum`/`highsum` arrays do.

use super::{nnz_balanced_range, SparseData};
use crate::shared::SyncSlice;

fn worker(d: &SparseData, y: SyncSlice<'_, f64>, iterations: usize, id: usize, nthreads: usize) {
    let nz = d.row.len();
    let (lo, hi) = nnz_balanced_range(&d.row_ptr, nz, id, nthreads);
    for _ in 0..iterations {
        for k in lo..hi {
            // SAFETY: ranges split at row boundaries, so y[row[k]] is
            // written by exactly one thread.
            unsafe {
                *y.get_mut(d.row[k]) += d.val[k] * d.x[d.col[k]];
            }
        }
    }
}

/// Run `iterations` passes on `threads` threads.
pub fn run(d: &SparseData, iterations: usize, threads: usize) -> Vec<f64> {
    let mut y = vec![0.0f64; d.n];
    {
        let y_s = SyncSlice::new(&mut y);
        std::thread::scope(|s| {
            for id in 1..threads {
                s.spawn(move || worker(d, y_s, iterations, id, threads));
            }
            worker(d, y_s, iterations, 0, threads);
        });
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::sparse::generate;

    #[test]
    fn mt_matches_seq() {
        let d = generate(Size::Small);
        let s = crate::sparse::seq::run(&d, 5);
        for t in [1, 2, 5] {
            assert_eq!(run(&d, 5, t), s, "t={t}");
        }
    }
}
