//! Sequential SparseMatmult with the nonzero loop refactored into a for
//! method (M2FOR).

use super::SparseData;

/// The for method: accumulate nonzeros `start..end` into `y`.
pub fn multiply(start: i64, end: i64, step: i64, d: &SparseData, y: &mut [f64]) {
    let mut k = start;
    while k < end {
        let ku = k as usize;
        y[d.row[ku]] += d.val[ku] * d.x[d.col[ku]];
        k += step;
    }
}

/// Run `iterations` multiplication passes sequentially.
pub fn run(d: &SparseData, iterations: usize) -> Vec<f64> {
    let mut y = vec![0.0f64; d.n];
    let nz = d.row.len() as i64;
    for _ in 0..iterations {
        multiply(0, nz, 1, d, &mut y);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::sparse::generate;

    #[test]
    fn one_pass_matches_dense_reference() {
        let d = generate(Size::Small);
        let y = run(&d, 1);
        // Dense recomputation.
        let mut dense = vec![0.0f64; d.n];
        for k in 0..d.row.len() {
            dense[d.row[k]] += d.val[k] * d.x[d.col[k]];
        }
        assert_eq!(y, dense);
    }

    #[test]
    fn passes_scale_linearly() {
        let d = generate(Size::Small);
        let y1 = run(&d, 1);
        let y3 = run(&d, 3);
        for (a, b) in y1.iter().zip(&y3) {
            assert!((3.0 * a - b).abs() < 1e-9);
        }
    }
}
