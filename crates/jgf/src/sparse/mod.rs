//! JGF SparseMatmult: repeated sparse matrix–vector multiplication
//! `y += A·x` with A in coordinate form sorted by row.
//!
//! Work cannot be split naively over nonzeros — two threads would race on
//! the same `y[row]` — so the JGF kernel (and the paper's Table 2 row)
//! uses a *case-specific* schedule: the nonzero range is split at row
//! boundaries, balanced by nonzero count. Here that schedule is an
//! application-specific aspect (a [`CustomAdvice`] for-method scheduler) —
//! Table 2's `PR, FOR (Case Specific), CS`.
//!
//! [`CustomAdvice`]: aomp_weaver::CustomAdvice

pub mod aomp;
pub mod mt;
pub mod seq;

use crate::harness::Size;
use crate::meta::{Abstraction, BenchmarkMeta, ForKind, Refactoring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multiplication passes (JGF uses 200).
pub const ITERATIONS: usize = 200;

/// (rows, nonzeros) per preset (JGF: A = 50k/250k, B = 100k/500k).
pub fn dims_for(size: Size) -> (usize, usize) {
    match size {
        Size::Small => (400, 2_000),
        Size::A => (50_000, 250_000),
        Size::B => (100_000, 500_000),
    }
}

/// A sparse matrix in row-sorted coordinate form plus the dense vector.
#[derive(Clone)]
pub struct SparseData {
    /// Row index per nonzero (non-decreasing).
    pub row: Vec<usize>,
    /// Column index per nonzero.
    pub col: Vec<usize>,
    /// Value per nonzero.
    pub val: Vec<f64>,
    /// CSR-style offsets: nonzeros of row r live at `row_ptr[r]..row_ptr[r+1]`.
    pub row_ptr: Vec<usize>,
    /// Input vector.
    pub x: Vec<f64>,
    /// Matrix dimension.
    pub n: usize,
}

/// Generate a random row-sorted sparse matrix, JGF-style.
pub fn generate(size: Size) -> SparseData {
    let (n, nz) = dims_for(size);
    let mut rng = StdRng::seed_from_u64(0x5a_a55e);
    let mut entries: Vec<(usize, usize, f64)> = (0..nz)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            )
        })
        .collect();
    entries.sort_by_key(|e| e.0);
    let row: Vec<usize> = entries.iter().map(|e| e.0).collect();
    let col: Vec<usize> = entries.iter().map(|e| e.1).collect();
    let val: Vec<f64> = entries.iter().map(|e| e.2).collect();
    let mut row_ptr = vec![0usize; n + 1];
    for &r in &row {
        row_ptr[r + 1] += 1;
    }
    for r in 0..n {
        row_ptr[r + 1] += row_ptr[r];
    }
    let x = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    SparseData {
        row,
        col,
        val,
        row_ptr,
        x,
        n,
    }
}

/// Split the nonzero range into `nthreads` sub-ranges at row boundaries,
/// balanced by nonzero count — the case-specific schedule. Returns the
/// `(lo, hi)` nonzero range of thread `tid`.
pub fn nnz_balanced_range(
    row_ptr: &[usize],
    nz: usize,
    tid: usize,
    nthreads: usize,
) -> (usize, usize) {
    let target_lo = nz * tid / nthreads;
    let target_hi = nz * (tid + 1) / nthreads;
    // Snap both ends up to the next row boundary.
    let snap = |target: usize| -> usize {
        match row_ptr.binary_search(&target) {
            Ok(i) => {
                // Several empty rows may share this offset; take the first.
                let mut i = i;
                while i > 0 && row_ptr[i - 1] == target {
                    i -= 1;
                }
                row_ptr[i]
            }
            Err(i) => {
                if i >= row_ptr.len() {
                    nz
                } else {
                    row_ptr[i]
                }
            }
        }
    };
    let lo = if tid == 0 { 0 } else { snap(target_lo) };
    let hi = if tid == nthreads - 1 {
        nz
    } else {
        snap(target_hi)
    };
    (lo, hi.max(lo))
}

/// Sum of the output vector — the JGF `ytotal` validation value.
pub fn ytotal(y: &[f64]) -> f64 {
    y.iter().sum()
}

/// Paper Table 2 row.
pub fn table2_meta() -> BenchmarkMeta {
    BenchmarkMeta {
        name: "Sparse",
        refactorings: vec![
            (Refactoring::MoveToForMethod, 1),
            (Refactoring::MoveToMethod, 1),
        ],
        abstractions: vec![
            (Abstraction::ParallelRegion, 1),
            (Abstraction::For(ForKind::CaseSpecific), 1),
            (Abstraction::CaseSpecific, 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_row_ptr_consistent() {
        let d = generate(Size::Small);
        assert_eq!(*d.row_ptr.last().unwrap(), d.row.len());
        for (k, &r) in d.row.iter().enumerate() {
            assert!(d.row_ptr[r] <= k && k < d.row_ptr[r + 1], "k={k} r={r}");
        }
        assert!(d.row.windows(2).all(|w| w[0] <= w[1]), "rows sorted");
    }

    #[test]
    fn balanced_ranges_partition_at_row_boundaries() {
        let d = generate(Size::Small);
        let nz = d.row.len();
        for threads in [1, 2, 3, 7] {
            let mut covered = 0;
            let mut prev_hi = 0;
            for tid in 0..threads {
                let (lo, hi) = nnz_balanced_range(&d.row_ptr, nz, tid, threads);
                assert_eq!(lo, prev_hi, "contiguous");
                prev_hi = hi;
                covered += hi - lo;
                // Boundaries never split a row.
                if lo > 0 && lo < nz {
                    assert_ne!(d.row[lo - 1], d.row[lo], "tid={tid} split a row at {lo}");
                }
            }
            assert_eq!(prev_hi, nz);
            assert_eq!(covered, nz);
        }
    }

    #[test]
    fn variants_agree_bitwise() {
        let d = generate(Size::Small);
        let iters = 20;
        let s = seq::run(&d, iters);
        for t in [1, 2, 4] {
            let m = mt::run(&d, iters, t);
            let a = aomp::run(&d, iters, t);
            assert_eq!(m, s, "mt t={t}");
            assert_eq!(a, s, "aomp t={t}");
        }
        assert!(ytotal(&s).is_finite());
        assert_ne!(ytotal(&s), 0.0);
    }
}
