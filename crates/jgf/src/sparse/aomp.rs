//! AOmpLib-style SparseMatmult: the paper Table 2 row with the
//! *case-specific* schedule — an application-specific aspect implements
//! the for-method scheduling (split at row boundaries, balanced by
//! nonzero count) instead of a library schedule.

use aomp::ctx;
use aomp::prelude::*;
use aomp_weaver::prelude::*;

use super::{nnz_balanced_range, SparseData};
use crate::shared::SyncSlice;

/// The case-specific aspect: an application-specific for-method scheduler
/// (paper §III-C's "parallelism specific code", using `getThreadId()`
/// inside the advice).
struct NnzBalancedSchedule {
    row_ptr: Vec<usize>,
}

impl CustomAdvice for NnzBalancedSchedule {
    fn around_for(
        &self,
        _jp: &JoinPoint<'_>,
        range: LoopRange,
        proceed: &mut dyn FnMut(i64, i64, i64),
    ) {
        let tid = ctx::thread_id();
        let n = ctx::team_size();
        let nz = range.count() as usize;
        let (lo, hi) = nnz_balanced_range(&self.row_ptr, nz, tid, n);
        if lo < hi {
            proceed(lo as i64, hi as i64, range.step);
        }
    }
}

/// The rewritten original method of paper Figure 12 (`original_*`): the
/// hot gather loop as its own function. `#[inline(never)]` keeps its
/// code generation independent of the weaving shim around it — inlining
/// it into the dispatch instantiation measurably pessimises the loop.
#[inline(never)]
fn original_multiply(lo: i64, hi: i64, st: i64, d: &SparseData, y: &SyncSlice<'_, f64>) {
    // SAFETY (both paths): the case-specific schedule splits at row
    // boundaries, so y[row[k]] has a single writer.
    if st == 1 {
        for ku in lo as usize..hi as usize {
            unsafe {
                *y.get_mut(d.row[ku]) += d.val[ku] * d.x[d.col[ku]];
            }
        }
    } else {
        let mut k = lo;
        while k < hi {
            let ku = k as usize;
            unsafe {
                *y.get_mut(d.row[ku]) += d.val[ku] * d.x[d.col[ku]];
            }
            k += st;
        }
    }
}

/// The for method join point `Sparse.multiply`.
fn multiply(start: i64, end: i64, step: i64, d: &SparseData, y: SyncSlice<'_, f64>) {
    aomp_weaver::call_for(
        "Sparse.multiply",
        LoopRange::new(start, end, step),
        |lo, hi, st| {
            original_multiply(lo, hi, st, d, &y);
        },
    );
}

/// The run method join point `Sparse.run`: the multiplication passes.
fn sparse_run(d: &SparseData, y: SyncSlice<'_, f64>, iterations: usize) {
    aomp_weaver::call("Sparse.run", || {
        let nz = d.row.len() as i64;
        for _ in 0..iterations {
            multiply(0, nz, 1, d, y);
        }
    });
}

/// The concrete aspect: parallel region + case-specific for scheduling.
pub fn aspect(threads: usize, d: &SparseData) -> AspectModule {
    AspectModule::builder("ParallelSparse")
        .bind(
            Pointcut::call("Sparse.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Sparse.multiply"),
            Mechanism::custom(NnzBalancedSchedule {
                row_ptr: d.row_ptr.clone(),
            }),
        )
        .build()
}

/// Run `iterations` passes on `threads` threads.
pub fn run(d: &SparseData, iterations: usize, threads: usize) -> Vec<f64> {
    let mut y = vec![0.0f64; d.n];
    {
        let y_s = SyncSlice::tracked(&mut y, "sparse.y");
        Weaver::global().with_deployed(aspect(threads, d), || sparse_run(d, y_s, iterations));
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Size;
    use crate::sparse::generate;

    #[test]
    fn unplugged_matches_seq() {
        let d = generate(Size::Small);
        let mut y = vec![0.0f64; d.n];
        {
            let y_s = SyncSlice::new(&mut y);
            sparse_run(&d, y_s, 4);
        }
        assert_eq!(y, crate::sparse::seq::run(&d, 4));
    }
}
