//! A per-thread event executor — the second, finer-grained simulator
//! mode.
//!
//! [`Simulator`](crate::exec::Simulator) treats every step as bulk
//! synchronous (all threads advance together), which over-synchronises
//! programs whose steps are *not* barrier-separated: a master-only step
//! followed by un-barriered parallel work really overlaps with the other
//! threads' progress. [`EventSimulator`] keeps one virtual clock per
//! thread and only aligns them at [`Step::Barrier`] — so the two
//! executors agree exactly on barrier-separated programs (a property
//! test enforces this) and the event executor gives a lower, tighter
//! bound elsewhere.

use crate::machine::Machine;
use crate::model::{Program, Step};

/// Per-thread virtual-time executor.
#[derive(Debug, Clone)]
pub struct EventSimulator {
    /// The machine model.
    pub machine: Machine,
}

impl EventSimulator {
    /// Executor for `machine`.
    pub fn new(machine: Machine) -> Self {
        Self { machine }
    }

    /// Wall time (µs of virtual time) of `program` on `t` threads.
    pub fn run(&self, program: &Program, t: usize) -> f64 {
        let t = t.max(1);
        let m = &self.machine;
        let per_thread_rate = m.ops_per_us * m.thread_speed(t);
        let mut clocks = vec![0.0f64; t];
        for step in &program.steps {
            match *step {
                Step::Parallel {
                    ops,
                    bytes,
                    imbalance,
                } => {
                    let imb = if t == 1 { 1.0 } else { imbalance.max(1.0) };
                    // The last thread carries the most-loaded share (the
                    // master, thread 0, is the one that also runs Serial
                    // steps, so a skewed loop rarely lands on it); the
                    // rest split the remainder evenly.
                    let heavy = ops / t as f64 * imb;
                    let light = if t == 1 {
                        heavy
                    } else {
                        (ops - heavy).max(0.0) / (t as f64 - 1.0)
                    };
                    // Bandwidth is shared: each thread's traffic share is
                    // proportional to its compute share.
                    for (i, c) in clocks.iter_mut().enumerate() {
                        let share_ops = if i == t - 1 { heavy } else { light };
                        let share_bytes = if ops > 0.0 {
                            bytes * share_ops / ops
                        } else {
                            bytes / t as f64
                        };
                        let compute = share_ops / per_thread_rate;
                        let memory = share_bytes / (m.bw_bytes_per_us / t as f64);
                        *c += compute.max(memory);
                    }
                }
                Step::Replicated { ops, bytes } => {
                    let dt = (ops / per_thread_rate).max(bytes * t as f64 / m.bw_bytes_per_us);
                    for c in clocks.iter_mut() {
                        *c += dt;
                    }
                }
                Step::Serial { ops, bytes } => {
                    // Only the master advances; siblings keep computing
                    // whatever un-barriered work follows.
                    clocks[0] += (ops / m.ops_per_us).max(bytes / m.bw_bytes_per_us);
                }
                Step::Barrier => {
                    let release = clocks.iter().cloned().fold(0.0, f64::max) + m.barrier_cost(t);
                    for c in clocks.iter_mut() {
                        *c = release;
                    }
                }
                // Contended steps keep the bulk-synchronous formulas (the
                // serialisation already couples the threads), and so does
                // the adaptive phase (stealing already couples them).
                Step::Critical { .. }
                | Step::NrCritical { .. }
                | Step::Locked { .. }
                | Step::AdaptiveChunk { .. }
                | Step::TaskDag { .. } => {
                    let dt = crate::exec::Simulator::new(self.machine.clone())
                        .run(&Program::new("step", vec![step.clone()]), t);
                    for c in clocks.iter_mut() {
                        *c += dt;
                    }
                }
            }
        }
        clocks.into_iter().fold(0.0, f64::max)
    }

    /// Speed-up of `program` on `t` threads relative to one thread.
    pub fn speedup(&self, program: &Program, t: usize) -> f64 {
        self.run(program, 1) / self.run(program, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Simulator;

    fn barrier_separated(phases: usize) -> Program {
        let mut steps = Vec::new();
        for i in 0..phases {
            steps.push(Step::Parallel {
                ops: 1e7 * (i + 1) as f64,
                bytes: 1e5,
                imbalance: 1.0,
            });
            steps.push(Step::Barrier);
        }
        Program::new("bs", steps)
    }

    #[test]
    fn agrees_with_bulk_sync_on_barrier_separated_programs() {
        let m = Machine::xeon();
        let bulk = Simulator::new(m.clone());
        let event = EventSimulator::new(m);
        let p = barrier_separated(5);
        for t in [1usize, 2, 6, 12, 24] {
            let a = bulk.run(&p, t);
            let b = event.run(&p, t);
            assert!((a - b).abs() / a < 1e-9, "t={t}: bulk {a} vs event {b}");
        }
    }

    #[test]
    fn serial_work_overlaps_without_barriers() {
        // Master-only step + un-barriered skewed parallel work: the event
        // executor overlaps the master's serial time with the heavy
        // worker's loop; the bulk one serialises everything.
        let m = Machine::i7();
        let p = Program::new(
            "overlap",
            vec![
                Step::Serial {
                    ops: 1e8,
                    bytes: 0.0,
                },
                Step::Parallel {
                    ops: 1e8,
                    bytes: 0.0,
                    imbalance: 2.0,
                },
                Step::Barrier,
            ],
        );
        let bulk = Simulator::new(m.clone()).run(&p, 4);
        let event = EventSimulator::new(m).run(&p, 4);
        assert!(event < bulk, "event {event} should beat bulk {bulk}");
    }

    #[test]
    fn event_never_beats_critical_path() {
        // Lower bound: total ops / machine peak.
        let m = Machine::xeon();
        let event = EventSimulator::new(m.clone());
        let p = barrier_separated(3);
        for t in [2usize, 12, 24] {
            let floor = p.total_ops() / m.total_rate(t);
            assert!(event.run(&p, t) >= floor - 1e-9, "t={t}");
        }
    }

    #[test]
    fn single_thread_reduces_to_sum_of_work() {
        let m = Machine::i7();
        let event = EventSimulator::new(m.clone());
        let p = Program::new(
            "seq",
            vec![
                Step::Parallel {
                    ops: 3.2e6,
                    bytes: 0.0,
                    imbalance: 1.5,
                },
                Step::Serial {
                    ops: 3.2e6,
                    bytes: 0.0,
                },
            ],
        );
        // 3.2e6 ops at 3200 ops/µs = 1000 µs each.
        assert!((event.run(&p, 1) - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn imbalance_lands_on_a_worker() {
        let m = Machine::i7();
        let event = EventSimulator::new(m);
        let balanced = Program::new(
            "b",
            vec![Step::Parallel {
                ops: 1e8,
                bytes: 0.0,
                imbalance: 1.0,
            }],
        );
        let skewed = Program::new(
            "s",
            vec![Step::Parallel {
                ops: 1e8,
                bytes: 0.0,
                imbalance: 2.0,
            }],
        );
        assert!(event.run(&skewed, 4) > event.run(&balanced, 4) * 1.8);
    }
}
