//! # aomp-simcore — a deterministic virtual-time multicore simulator
//!
//! The AOmpLib paper evaluates on two machines we do not have (a 4-core /
//! 8-thread Intel i7 and a dual-socket 12-core / 24-thread Xeon X5650);
//! this reproduction runs in a **single-core** container, where real
//! wall-clock speed-up is unobservable. Per the substitution rule in
//! DESIGN.md, this crate models those machines analytically and replays
//! each benchmark's parallel structure on them, reproducing the *shape*
//! of the paper's Figures 13 and 15: who wins, by roughly what factor,
//! and where the crossovers fall.
//!
//! The model is deliberately simple and fully documented:
//!
//! * a [`machine::Machine`] has cores, SMT threads, per-core throughput,
//!   a shared memory bandwidth, and synchronisation costs;
//! * a program is a bulk-synchronous sequence of [`model::Step`]s —
//!   work-shared parallel phases (roofline: max of compute time and
//!   memory time), replicated phases, master-only phases, barriers,
//!   critical sections (globally serialised, with cache-line handoff
//!   costs) and fine-grained locked updates;
//! * [`exec::Simulator`] advances virtual time step by step; speed-up is
//!   the ratio of simulated 1-thread time to simulated t-thread time.
//!
//! [`models`] contains the per-benchmark structural models, with every
//! operation/byte count derived from the actual Rust kernel inner loops
//! in `aomp-jgf` (see each function's comments).

#![warn(missing_docs)]

pub mod event;
pub mod exec;
pub mod json;
pub mod machine;
pub mod model;
pub mod models;

pub use event::EventSimulator;
pub use exec::Simulator;
pub use json::{Json, ToJson};
pub use machine::Machine;
pub use model::{Program, Step};
