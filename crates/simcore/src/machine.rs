//! Machine models: the paper's two evaluation hosts.

use crate::json::Json;

/// An SMP machine model. All rates are per microsecond of virtual time.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Display name.
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (with SMT).
    pub hw_threads: usize,
    /// Abstract operations per µs per core (single-thread throughput).
    pub ops_per_us: f64,
    /// SMT throughput bonus: running 2 threads on one core yields
    /// `smt_bonus` × one thread's throughput (≈ 1.25–1.35 in practice).
    pub smt_bonus: f64,
    /// Shared memory bandwidth in bytes per µs.
    pub bw_bytes_per_us: f64,
    /// Barrier cost: µs × log2(threads).
    pub barrier_us_log2: f64,
    /// Uncontended lock/critical entry cost in µs.
    pub lock_entry_us: f64,
    /// Extra per-entry cost when a contended line migrates between
    /// caches (higher across sockets).
    pub handoff_us: f64,
    /// Last-level cache capacity in bytes (total across sockets).
    pub l3_bytes: f64,
    /// Cores per socket (NUMA domain size).
    pub cores_per_socket: usize,
    /// Throughput penalty coefficient for phases whose hot data was
    /// allocated on one node while threads span sockets (remote-memory
    /// accesses): effective ops ×= 1 + penalty × (remote thread share).
    pub numa_penalty: f64,
}

impl Machine {
    /// JSON encoding of every field, mirroring the serde derive this
    /// replaced.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("cores".to_owned(), Json::Num(self.cores as f64)),
            ("hw_threads".to_owned(), Json::Num(self.hw_threads as f64)),
            ("ops_per_us".to_owned(), Json::Num(self.ops_per_us)),
            ("smt_bonus".to_owned(), Json::Num(self.smt_bonus)),
            (
                "bw_bytes_per_us".to_owned(),
                Json::Num(self.bw_bytes_per_us),
            ),
            (
                "barrier_us_log2".to_owned(),
                Json::Num(self.barrier_us_log2),
            ),
            ("lock_entry_us".to_owned(), Json::Num(self.lock_entry_us)),
            ("handoff_us".to_owned(), Json::Num(self.handoff_us)),
            ("l3_bytes".to_owned(), Json::Num(self.l3_bytes)),
            (
                "cores_per_socket".to_owned(),
                Json::Num(self.cores_per_socket as f64),
            ),
            ("numa_penalty".to_owned(), Json::Num(self.numa_penalty)),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Result<Machine, String> {
        Ok(Machine {
            name: j.str_field("name")?,
            cores: j.usize_field("cores")?,
            hw_threads: j.usize_field("hw_threads")?,
            ops_per_us: j.f64_field("ops_per_us")?,
            smt_bonus: j.f64_field("smt_bonus")?,
            bw_bytes_per_us: j.f64_field("bw_bytes_per_us")?,
            barrier_us_log2: j.f64_field("barrier_us_log2")?,
            lock_entry_us: j.f64_field("lock_entry_us")?,
            handoff_us: j.f64_field("handoff_us")?,
            l3_bytes: j.f64_field("l3_bytes")?,
            cores_per_socket: j.usize_field("cores_per_socket")?,
            numa_penalty: j.f64_field("numa_penalty")?,
        })
    }

    /// The paper's machine 1: Intel i7, four 3.2 GHz cores sharing an
    /// 8 MB L3, 8 hardware threads.
    pub fn i7() -> Machine {
        Machine {
            name: "i7 (4c/8t, 3.2GHz)".into(),
            cores: 4,
            hw_threads: 8,
            ops_per_us: 3200.0,
            smt_bonus: 1.30,
            bw_bytes_per_us: 18_000.0,
            barrier_us_log2: 1.2,
            lock_entry_us: 0.05,
            handoff_us: 0.12,
            l3_bytes: 8.0e6,
            cores_per_socket: 4,
            numa_penalty: 0.0,
        }
    }

    /// The paper's machine 2: dual Xeon X5650, 2 × 6 cores at 2.66 GHz,
    /// 12 MB L3 per socket, 24 hardware threads.
    pub fn xeon() -> Machine {
        Machine {
            name: "Xeon X5650 (2x6c/24t, 2.66GHz)".into(),
            cores: 12,
            hw_threads: 24,
            ops_per_us: 2660.0,
            smt_bonus: 1.35,
            bw_bytes_per_us: 42_000.0,
            barrier_us_log2: 2.0,
            lock_entry_us: 0.06,
            handoff_us: 0.25,
            l3_bytes: 24.0e6,
            cores_per_socket: 6,
            numa_penalty: 1.5,
        }
    }

    /// Number of sockets (NUMA nodes) on the machine.
    pub fn sockets(&self) -> usize {
        (self.cores / self.cores_per_socket).max(1)
    }

    /// Sockets a team of `t` threads spans under compact placement
    /// (fill one socket before spilling to the next).
    pub fn sockets_spanned(&self, t: usize) -> usize {
        t.max(1).div_ceil(self.cores_per_socket).min(self.sockets())
    }

    /// Slowdown factor for single-node-allocated data touched by `t`
    /// threads: threads beyond the first socket pay remote accesses.
    pub fn numa_factor(&self, t: usize) -> f64 {
        if t <= self.cores_per_socket || self.numa_penalty == 0.0 {
            1.0
        } else {
            let remote_share = 1.0 - self.cores_per_socket as f64 / t as f64;
            1.0 + self.numa_penalty * remote_share
        }
    }

    /// Effective cache miss rate for a phase whose hot working set is
    /// `working_set` bytes: low while it fits in the last-level cache,
    /// approaching 1 as the set far exceeds it.
    pub fn miss_rate(&self, working_set: f64) -> f64 {
        if working_set <= self.l3_bytes {
            0.03
        } else {
            (1.0 - self.l3_bytes / working_set).clamp(0.03, 0.95)
        }
    }

    /// Per-thread compute throughput multiplier when `t` threads run:
    /// 1.0 while threads fit on distinct cores; beyond that each extra
    /// SMT sibling adds `smt_bonus − 1` core-equivalents, ramping the
    /// aggregate capacity smoothly from `cores` at `t = cores` to
    /// `cores·smt_bonus` at `t = 2·cores`.
    pub fn thread_speed(&self, t: usize) -> f64 {
        if t <= self.cores {
            1.0
        } else {
            let extra = (t - self.cores).min(self.cores) as f64;
            let capacity = self.cores as f64 + extra * (self.smt_bonus - 1.0);
            capacity / t as f64
        }
    }

    /// Aggregate compute throughput (ops/µs) of `t` threads.
    pub fn total_rate(&self, t: usize) -> f64 {
        self.ops_per_us * self.thread_speed(t) * t as f64
    }

    /// Barrier cost for a team of `t`.
    pub fn barrier_cost(&self, t: usize) -> f64 {
        if t <= 1 {
            0.0
        } else {
            self.barrier_us_log2 * (t as f64).log2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_speed_full_until_cores() {
        let m = Machine::i7();
        assert_eq!(m.thread_speed(1), 1.0);
        assert_eq!(m.thread_speed(4), 1.0);
        assert!(m.thread_speed(8) < 1.0);
        // SMT: 8 threads on 4 cores deliver 4×1.3 cores' worth.
        assert!((m.total_rate(8) - m.ops_per_us * 4.0 * 1.3).abs() < 1e-9);
    }

    #[test]
    fn total_rate_monotone_in_threads() {
        for m in [Machine::i7(), Machine::xeon()] {
            let mut last = 0.0;
            for t in 1..=m.hw_threads {
                let r = m.total_rate(t);
                assert!(r >= last - 1e-9, "{} t={t}: {r} < {last}", m.name);
                last = r;
            }
        }
    }

    #[test]
    fn barrier_cost_grows_with_team() {
        let m = Machine::xeon();
        assert_eq!(m.barrier_cost(1), 0.0);
        assert!(m.barrier_cost(24) > m.barrier_cost(4));
    }

    #[test]
    fn numa_factor_kicks_in_beyond_one_socket() {
        let x = Machine::xeon();
        assert_eq!(x.numa_factor(4), 1.0);
        assert_eq!(x.numa_factor(6), 1.0);
        assert!(x.numa_factor(12) > 1.5);
        let i = Machine::i7();
        assert_eq!(i.numa_factor(8), 1.0, "single socket has no NUMA penalty");
    }

    #[test]
    fn xeon_peak_speedup_matches_paper_ballpark() {
        // Paper Figure 13: best kernels reach ~16–17× on 24 threads.
        let m = Machine::xeon();
        let peak = m.total_rate(24) / m.total_rate(1);
        assert!((15.0..18.0).contains(&peak), "peak={peak}");
    }
}
