//! Minimal JSON support for model persistence.
//!
//! The workspace builds with no registry access, so instead of `serde` +
//! `serde_json` the simulator models carry hand-written converters over
//! this small [`Json`] value type. The encoding mirrors what
//! serde-derive produced for these types (struct → object, enum struct
//! variant → `{"Variant": {..}}`, unit variant → `"Variant"`), so any
//! previously written result files still parse.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order for stable output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like serde_json's default).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Field `key` as an `f64`, with a descriptive error.
    pub fn f64_field(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    }

    /// Field `key` as a `usize`, with a descriptive error.
    pub fn usize_field(&self, key: &str) -> Result<usize, String> {
        self.get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("missing integer field `{key}`"))
    }

    /// Field `key` as a string, with a descriptive error.
    pub fn str_field(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field `{key}`"))
    }

    /// Parse a JSON document.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Pretty serialisation with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Compact serialisation (use [`Json::pretty`] for indented output).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len()
            && matches!(self.src[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for model
                            // names; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let bytes = self.src.get(start..start + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(bytes).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Conversion into a [`Json`] value — the stand-in for `serde::Serialize`
/// used by the bench harness's `--json` outputs.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n".into())),
            (
                "xs".into(),
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Num(2.5),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let j = Json::parse(r#""tab\tA µ""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "tab\tA µ");
    }
}
