//! Structural models of the eight JGF benchmarks and the MolDyn
//! parallelisation variants, with operation and byte counts derived from
//! the Rust kernels in `aomp-jgf`.
//!
//! Conventions:
//! * "ops" are abstract scalar operations (≈ one ALU/FPU instruction);
//!   the counts come from reading the kernel inner loops (documented per
//!   model).
//! * "bytes" are traffic through the shared memory system after cache
//!   filtering; streaming kernels count each array pass once, cached
//!   kernels apply [`Machine::miss_rate`](crate::machine::Machine::miss_rate)
//!   to their hot working set.
//! * The AOmp version of a benchmark is the same structure with a small
//!   constant dispatch overhead (`AOMP_OVERHEAD`) — the paper reports the
//!   AOmp/JGF difference as below 1 %, which our direct measurement
//!   (bench `overhead_fig13`) confirms independently.

use crate::machine::Machine;
use crate::model::{Program, Step};

/// Relative overhead of the aspect machinery on the total operation
/// count (compile-time-woven shims plus a handful of dispatches per
/// region — well under the paper's 1 % bound).
pub const AOMP_OVERHEAD: f64 = 1.004;

fn scaled(ops: f64, aomp: bool) -> f64 {
    if aomp {
        ops * AOMP_OVERHEAD
    } else {
        ops
    }
}

/// Crypt: IDEA over `n` bytes, encrypt + decrypt.
/// Per 8-byte block: 8 rounds × ~14 ops + output transform ≈ 120 ops
/// → 15 ops/byte/pass; traffic: read + write per pass.
pub fn crypt(n: usize, aomp: bool) -> Program {
    let n = n as f64;
    let pass = Step::Parallel {
        ops: scaled(15.0 * n, aomp),
        bytes: 2.0 * n,
        imbalance: 1.0,
    };
    Program::new(
        if aomp { "Crypt Aomp" } else { "Crypt JGF" },
        vec![pass.clone(), pass],
    )
}

/// LUFact: `dgefa` on an `n`×`n` system. Per column k: replicated pivot
/// search over n-k elements, a master interchange+dscal (n-k ops), four
/// barriers, and the work-shared reduction of (n-k) columns × (n-k)
/// daxpy elements (2 ops each; ~6 bytes effective traffic each — the
/// pivot column stays cached and roughly half the trailing submatrix
/// survives in the last-level cache between columns).
pub fn lufact(n: usize, aomp: bool) -> Program {
    let mut steps = Vec::new();
    for k in 0..n - 1 {
        let rem = (n - k) as f64;
        steps.push(Step::Replicated {
            ops: scaled(rem, aomp),
            bytes: 8.0 * rem,
        });
        steps.push(Step::Barrier);
        steps.push(Step::Serial {
            ops: rem,
            bytes: 8.0 * rem,
        });
        steps.push(Step::Barrier);
        steps.push(Step::Parallel {
            ops: scaled(2.0 * rem * rem, aomp),
            bytes: 6.0 * rem * rem,
            imbalance: 1.0,
        });
        steps.push(Step::Barrier);
        steps.push(Step::Barrier);
    }
    Program::new(if aomp { "LUFact Aomp" } else { "LUFact JGF" }, steps)
}

/// Series: `n` coefficient pairs × 1000-step trapezoid integration ×
/// ~60 ops per evaluation (powf + trig); negligible memory.
pub fn series(n: usize, aomp: bool) -> Program {
    let ops = scaled(n as f64 * 2.0 * 1000.0 * 60.0, aomp);
    Program::new(
        if aomp { "Series Aomp" } else { "Series JGF" },
        vec![Step::Parallel {
            ops,
            bytes: 16.0 * n as f64,
            imbalance: 1.0,
        }],
    )
}

/// SOR: `iters` red–black sweeps on an `n`×`n` grid; each half sweep
/// updates n²/2 cells × 6 ops, streaming read+write (≈16 B/cell after
/// neighbour-row reuse), barrier after each half sweep.
pub fn sor(n: usize, iters: usize, aomp: bool) -> Program {
    let half = vec![
        Step::Parallel {
            ops: scaled((n * n / 2) as f64 * 6.0, aomp),
            bytes: (n * n / 2) as f64 * 16.0,
            imbalance: 1.0,
        },
        Step::Barrier,
    ];
    Program::repeat(if aomp { "SOR Aomp" } else { "SOR JGF" }, half, 2 * iters)
}

/// SparseMatmult: `iters` passes over `nz` nonzeros; each nonzero costs
/// ~10 ops (index loads, address arithmetic, gather, FMA, scatter) and
/// ~18 effective bytes (streamed row/col/val arrays with the x gathers
/// partially cached); the nnz-balanced case-specific schedule gives
/// near-perfect balance.
pub fn sparse(nz: usize, iters: usize, aomp: bool) -> Program {
    let pass = vec![Step::Parallel {
        ops: scaled(nz as f64 * 10.0, aomp),
        bytes: nz as f64 * 18.0,
        imbalance: 1.05,
    }];
    Program::repeat(if aomp { "Sparse Aomp" } else { "Sparse JGF" }, pass, iters)
}

/// MonteCarlo: `runs` paths × 1000 steps × ~50 ops (Box–Muller + exp);
/// cyclic schedule, negligible memory.
pub fn montecarlo(runs: usize, aomp: bool) -> Program {
    let ops = scaled(runs as f64 * 1000.0 * 50.0, aomp);
    Program::new(
        if aomp {
            "MonteCarlo Aomp"
        } else {
            "Monte Carlo JGF"
        },
        vec![Step::Parallel {
            ops,
            bytes: 8.0 * runs as f64,
            imbalance: 1.02,
        }],
    )
}

/// RayTracer: `res`² pixels × (65 sphere tests ≈ 12 ops each, shadow and
/// reflection rays roughly doubling it) ≈ 1600 ops/pixel; cyclic over
/// scanlines with mild scene-dependent imbalance.
pub fn raytracer(res: usize, aomp: bool) -> Program {
    let ops = scaled((res * res) as f64 * 1600.0, aomp);
    Program::new(
        if aomp {
            "RayTracer Aomp"
        } else {
            "RayTracer JGF"
        },
        vec![Step::Parallel {
            ops,
            bytes: (res * res) as f64 * 3.0,
            imbalance: 1.1,
        }],
    )
}

/// How MolDyn's symmetric force updates are protected — the Figure 15
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MolDynStrategy {
    /// Per-thread force arrays reduced after the force phase (JGF and the
    /// AOmp `@ThreadLocalField` version).
    ThreadLocal,
    /// One global critical section around cross-particle updates.
    Critical,
    /// One lock per particle.
    Locks,
}

impl MolDynStrategy {
    /// Figure 15 series label.
    pub fn label(&self) -> &'static str {
        match self {
            MolDynStrategy::ThreadLocal => "JGF",
            MolDynStrategy::Critical => "Critical",
            MolDynStrategy::Locks => "Locks",
        }
    }
}

/// MolDyn structural model for `n` particles and `moves` steps on `t`
/// threads. Thread-aware because the strategies genuinely differ with
/// `t`: thread-local arrays do O(n·t) reduction work and are allocated by
/// the master (single NUMA node), so beyond one socket every remote
/// thread's accumulation pays remote-memory latency.
///
/// Counts per move, derived from `jgf::moldyn::forces` and the JGF
/// kernel structure:
/// * all-pairs force search: n²/2 distance evaluations × ~15 ops;
/// * with JGF's `rcoff = side/4` the in-cutoff volume fraction is
///   π/48 ≈ 6.5 %, so symmetric updates ≈ 0.0325·n² (6 ops each);
/// * thread-local: updates land in private arrays; a reduce phase does
///   O(3·n·t) ops and moves 24·n·(t+1) bytes;
/// * critical: the JGF critical variant batches one lock entry per
///   particle, applying that particle's accumulated updates inside it;
/// * locks: per-update fine-grained locking over n particle locks;
/// * domove/kinetic phases: ~9 ops and 72 B per particle.
pub fn moldyn(
    n: usize,
    moves: usize,
    t: usize,
    strategy: MolDynStrategy,
    machine: &Machine,
    aomp: bool,
) -> Program {
    let nf = n as f64;
    let pairs = nf * nf / 2.0;
    let cutoff_fraction = std::f64::consts::PI / 48.0; // (4/3)π(side/4)³ / side³
    let updates = pairs * cutoff_fraction;
    let search_ops = pairs * 15.0;
    let per_particle = Step::Parallel {
        ops: scaled(9.0 * nf, aomp),
        bytes: 72.0 * nf,
        imbalance: 1.0,
    };

    let mut group: Vec<Step> = Vec::new();
    group.push(per_particle.clone()); // domove
    group.push(Step::Barrier);
    match strategy {
        MolDynStrategy::ThreadLocal => {
            // Private force arrays are master-allocated: remote threads
            // pay NUMA latency on every accumulation beyond one socket.
            let numa = machine.numa_factor(t);
            let ws = 24.0 * nf * (t as f64 + 1.0);
            group.push(Step::Parallel {
                ops: scaled((search_ops + updates * 6.0) * numa, aomp),
                bytes: updates * 64.0 * machine.miss_rate(ws),
                imbalance: 1.02,
            });
            group.push(Step::Barrier);
            // Zero + reduce the per-thread arrays: O(n·t) ops and bytes.
            group.push(Step::Parallel {
                ops: scaled(3.0 * nf * t as f64 * numa, aomp),
                bytes: 24.0 * nf * (t as f64 + 1.0),
                imbalance: 1.0,
            });
            group.push(Step::Barrier);
        }
        MolDynStrategy::Critical => {
            // One batched entry per particle: all of its accumulated
            // updates are applied inside a single lock hold.
            let ws = 48.0 * nf;
            group.push(Step::Critical {
                entries: nf,
                ops_each: updates / nf * 6.0,
                overlap_ops: scaled(search_ops, aomp),
                bytes: updates * 64.0 * machine.miss_rate(ws),
            });
            group.push(Step::Barrier);
        }
        MolDynStrategy::Locks => {
            let ws = 56.0 * nf;
            group.push(Step::Locked {
                entries: updates + nf,
                ops_each: 6.0,
                nlocks: nf,
                overlap_ops: scaled(search_ops, aomp),
                bytes: updates * 64.0 * machine.miss_rate(ws),
            });
            group.push(Step::Barrier);
        }
    }
    group.push(per_particle); // kinetic update
    group.push(Step::Barrier);
    let name = format!(
        "MolDyn {}{}",
        strategy.label(),
        if aomp { " Aomp" } else { "" }
    );
    Program::repeat(name, group, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Simulator;

    fn i7() -> Simulator {
        Simulator::new(Machine::i7())
    }
    fn xeon() -> Simulator {
        Simulator::new(Machine::xeon())
    }

    #[test]
    fn compute_bound_kernels_scale_well() {
        // Paper Figure 13: Series, Crypt, MonteCarlo, RayTracer scale.
        let s = xeon();
        for p in [
            series(10_000, false),
            crypt(20_000_000, false),
            montecarlo(60_000, false),
            raytracer(500, false),
        ] {
            let su = s.speedup(&p, 24);
            assert!(su > 10.0, "{}: {su}", p.name);
        }
    }

    #[test]
    fn lufact_and_sor_scale_poorly() {
        // Paper: "both LUFact and SOR benchmarks scale poorly due to the
        // lack of locality of memory accesses".
        let s = xeon();
        for p in [lufact(1000, false), sor(1000, 100, false)] {
            let su = s.speedup(&p, 24);
            assert!(su < 6.0, "{}: {su}", p.name);
            assert!(su > 1.0, "{}: {su}", p.name);
        }
    }

    #[test]
    fn aomp_within_one_percent_of_jgf() {
        // Paper Figure 13's headline claim.
        for t in [8usize, 24] {
            let s = if t == 8 { i7() } else { xeon() };
            let pairs = [
                (crypt(20_000_000, false), crypt(20_000_000, true)),
                (lufact(1000, false), lufact(1000, true)),
                (series(10_000, false), series(10_000, true)),
                (sor(1000, 100, false), sor(1000, 100, true)),
                (sparse(500_000, 200, false), sparse(500_000, 200, true)),
                (montecarlo(60_000, false), montecarlo(60_000, true)),
                (raytracer(500, false), raytracer(500, true)),
            ];
            for (jgf, aomp) in pairs {
                let a = s.run(&jgf, t);
                let b = s.run(&aomp, t);
                let diff = (b - a).abs() / a;
                assert!(diff < 0.01, "{} vs {}: {diff}", jgf.name, aomp.name);
            }
        }
    }

    #[test]
    fn moldyn_locks_beat_threadlocal_at_12_threads_jgf_size() {
        // Paper Figure 15: "using a lock per particle provides better
        // performance than the JGF base implementation for 12 threads"
        // at the JGF size (8788 particles).
        let m = Machine::xeon();
        let s = Simulator::new(m.clone());
        let n = 8788;
        let base = s.run(&moldyn(n, 50, 1, MolDynStrategy::ThreadLocal, &m, false), 1);
        let tl = base
            / s.run(
                &moldyn(n, 50, 12, MolDynStrategy::ThreadLocal, &m, false),
                12,
            );
        let lk = base / s.run(&moldyn(n, 50, 12, MolDynStrategy::Locks, &m, false), 12);
        assert!(lk > tl, "locks {lk} vs threadlocal {tl}");
    }

    #[test]
    fn moldyn_critical_best_at_large_sizes_few_threads() {
        // Paper Figure 15: "for larger number of particles (256k and
        // 500k) and a small number of threads the critical region
        // approach is the best strategy".
        let m = Machine::xeon();
        let s = Simulator::new(m.clone());
        for n in [256_000usize, 500_000] {
            let base = s.run(&moldyn(n, 50, 1, MolDynStrategy::ThreadLocal, &m, false), 1);
            let tl = base / s.run(&moldyn(n, 50, 4, MolDynStrategy::ThreadLocal, &m, false), 4);
            let cr = base / s.run(&moldyn(n, 50, 4, MolDynStrategy::Critical, &m, false), 4);
            let lk = base / s.run(&moldyn(n, 50, 4, MolDynStrategy::Locks, &m, false), 4);
            assert!(
                cr > tl && cr >= lk * 0.999,
                "n={n}: critical {cr} vs tl {tl} vs locks {lk}"
            );
        }
    }

    #[test]
    fn moldyn_critical_poor_at_small_sizes() {
        // Figure 15's left side: the critical strategy is the worst at
        // small particle counts (serialisation dominates).
        let m = Machine::xeon();
        let s = Simulator::new(m.clone());
        let n = 864;
        let base = s.run(&moldyn(n, 50, 1, MolDynStrategy::ThreadLocal, &m, false), 1);
        let tl = base
            / s.run(
                &moldyn(n, 50, 12, MolDynStrategy::ThreadLocal, &m, false),
                12,
            );
        let cr = base / s.run(&moldyn(n, 50, 12, MolDynStrategy::Critical, &m, false), 12);
        assert!(
            cr < tl,
            "critical {cr} should trail threadlocal {tl} at n=864"
        );
    }

    #[test]
    fn speedups_bounded_by_machine_peak() {
        let m = Machine::xeon();
        let s = Simulator::new(m.clone());
        let peak = m.total_rate(24) / m.total_rate(1) + 1e-9;
        for p in [series(10_000, false), crypt(20_000_000, false)] {
            assert!(s.speedup(&p, 24) <= peak);
        }
    }
}
