//! The virtual-time executor: advances a bulk-synchronous step sequence
//! on a machine model and reports wall time and speed-up.

use crate::machine::Machine;
use crate::model::{Program, Step};

/// Executes [`Program`]s on a [`Machine`].
#[derive(Debug, Clone)]
pub struct Simulator {
    /// The machine model.
    pub machine: Machine,
}

impl Simulator {
    /// Simulator for `machine`.
    pub fn new(machine: Machine) -> Self {
        Self { machine }
    }

    /// Wall time (µs of virtual time) of `program` on `t` threads.
    pub fn run(&self, program: &Program, t: usize) -> f64 {
        let t = t.max(1);
        let m = &self.machine;
        let per_thread_rate = m.ops_per_us * m.thread_speed(t);
        let mut wall = 0.0f64;
        for step in &program.steps {
            wall += match *step {
                Step::Parallel {
                    ops,
                    bytes,
                    imbalance,
                } => {
                    let imb = if t == 1 { 1.0 } else { imbalance.max(1.0) };
                    let compute = ops / (t as f64) * imb / per_thread_rate;
                    let memory = bytes / m.bw_bytes_per_us;
                    compute.max(memory)
                }
                Step::Replicated { ops, bytes } => {
                    let compute = ops / per_thread_rate;
                    // Every thread pulls its own copy through memory.
                    let memory = bytes * t as f64 / m.bw_bytes_per_us;
                    compute.max(memory)
                }
                Step::Serial { ops, bytes } => {
                    // The master runs alone at full single-thread speed.
                    (ops / m.ops_per_us).max(bytes / m.bw_bytes_per_us)
                }
                Step::Barrier => m.barrier_cost(t),
                Step::Critical {
                    entries,
                    ops_each,
                    overlap_ops,
                    bytes,
                } => {
                    let hold = ops_each / m.ops_per_us + m.lock_entry_us;
                    let serial = entries * hold;
                    if t == 1 {
                        overlap_ops / per_thread_rate + serial
                    } else {
                        // Per-thread busy time: its compute share plus its
                        // own lock holds.
                        let compute = overlap_ops / t as f64 / per_thread_rate;
                        let own = compute + serial / t as f64;
                        // Lock utilisation relative to the compute that
                        // could hide it; once busy, queueing and
                        // cache-line handoffs inflate the serial path.
                        let util = if compute > 0.0 {
                            (serial / compute).min(1.0)
                        } else {
                            1.0
                        };
                        let handoffs = entries * m.handoff_us * util;
                        let serial_eff = (serial + handoffs) * (1.0 + (t as f64 - 1.0) * util);
                        let memory = bytes / m.bw_bytes_per_us;
                        own.max(serial_eff).max(memory)
                    }
                }
                Step::NrCritical {
                    entries,
                    ops_each,
                    overlap_ops,
                    bytes,
                } => {
                    let hold = ops_each / m.ops_per_us;
                    if t == 1 {
                        // Degenerate single-thread run: the caller
                        // combines its own op inline, paying the slot
                        // round-trip a plain lock does not.
                        overlap_ops / per_thread_rate
                            + entries * (hold + m.lock_entry_us + m.handoff_us)
                    } else {
                        let sockets = m.sockets_spanned(t) as f64;
                        // Posters publish into a replica slot and read
                        // back the response: the slot's cache line
                        // migrates poster → combiner → poster.
                        let publish = m.lock_entry_us + 2.0 * m.handoff_us;
                        let compute =
                            overlap_ops / t as f64 / per_thread_rate + entries / t as f64 * publish;
                        // One combiner per socket replays the whole log
                        // into its replica. Batch ≈ threads per socket;
                        // the combiner-lock entry and the log's line
                        // migrations are paid once per batch (log slots
                        // are contiguous and stream), remote-socket
                        // batches costing one extra handoff. Unlike
                        // `Critical`, no team-wide queueing multiplier:
                        // waiting posters park on their own slot.
                        let batch = (t as f64 / sockets).max(1.0);
                        let remote = (sockets - 1.0) / sockets;
                        let serial_replica = entries * hold
                            + entries / batch * (m.lock_entry_us + m.handoff_us * (1.0 + remote));
                        let memory = bytes / m.bw_bytes_per_us;
                        compute.max(serial_replica).max(memory)
                    }
                }
                Step::AdaptiveChunk {
                    ops,
                    bytes,
                    imbalance,
                    chunks_per_thread,
                } => {
                    let chunks = chunks_per_thread.max(1.0);
                    if t == 1 {
                        // Sequential: nothing to refine or steal; the
                        // dispenser still pays its per-chunk lock entry.
                        (ops / m.ops_per_us + chunks * m.lock_entry_us)
                            .max(bytes / m.bw_bytes_per_us)
                    } else {
                        let imb = imbalance.max(1.0);
                        // Refinement smooths all but one chunk-grain of
                        // the overload: residual imbalance shrinks with
                        // the dispensed chunk count.
                        let residual = 1.0 + (imb - 1.0) / chunks;
                        let compute = ops / t as f64 * residual / per_thread_rate;
                        // One range-lock entry per dispensed chunk, paid
                        // by each thread on its own critical path.
                        let dispense = chunks * m.lock_entry_us;
                        // Steal-half adoptions migrate the adopted
                        // range's working lines: the adoption count
                        // scales with the overload being drained, and a
                        // remote-socket fraction pays an extra handoff.
                        let sockets = m.sockets_spanned(t) as f64;
                        let remote = (sockets - 1.0) / sockets;
                        let steals = (imb - 1.0) * t as f64;
                        let steal = steals * m.handoff_us * (1.0 + remote) / t as f64;
                        let memory = bytes / m.bw_bytes_per_us;
                        (compute + dispense + steal).max(memory)
                    }
                }
                Step::TaskDag {
                    ops,
                    bytes,
                    crit_ops,
                    tasks,
                } => {
                    // Wiring a task's tags holds the group lock once;
                    // releasing its successors migrates the node's line.
                    let task_over = m.lock_entry_us + m.handoff_us;
                    if t == 1 {
                        (ops / m.ops_per_us + tasks * task_over).max(bytes / m.bw_bytes_per_us)
                    } else {
                        // No barrier rounds: the lower envelope is the
                        // even share or the critical path, whichever
                        // dominates. The dependence bookkeeping is paid
                        // across the team.
                        let compute = (ops / t as f64).max(crit_ops) / per_thread_rate;
                        let overhead = tasks / t as f64 * task_over;
                        let memory = bytes / m.bw_bytes_per_us;
                        (compute + overhead).max(memory)
                    }
                }
                Step::Locked {
                    entries,
                    ops_each,
                    nlocks,
                    overlap_ops,
                    bytes,
                } => {
                    let base = ops_each / per_thread_rate + m.lock_entry_us;
                    // Collision probability ≈ (t-1)/nlocks per entry; a
                    // collision costs one handoff.
                    let collide = if t == 1 {
                        0.0
                    } else {
                        ((t as f64 - 1.0) / nlocks).min(1.0) * m.handoff_us
                    };
                    let compute = (overlap_ops / t as f64) / per_thread_rate
                        + entries / t as f64 * (base + collide);
                    let memory = bytes / m.bw_bytes_per_us;
                    compute.max(memory)
                }
            };
        }
        wall
    }

    /// Speed-up of `program` on `t` threads relative to one thread.
    pub fn speedup(&self, program: &Program, t: usize) -> f64 {
        self.run(program, 1) / self.run(program, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulator {
        Simulator::new(Machine::i7())
    }

    fn pure_compute(ops: f64) -> Program {
        Program::new(
            "c",
            vec![Step::Parallel {
                ops,
                bytes: 0.0,
                imbalance: 1.0,
            }],
        )
    }

    #[test]
    fn pure_compute_scales_linearly_to_core_count() {
        let s = sim();
        let p = pure_compute(1e9);
        let su4 = s.speedup(&p, 4);
        assert!((su4 - 4.0).abs() < 1e-9, "su4={su4}");
    }

    #[test]
    fn smt_gives_sublinear_beyond_cores() {
        let s = sim();
        let p = pure_compute(1e9);
        let su8 = s.speedup(&p, 8);
        assert!(su8 > 4.0 && su8 < 8.0, "su8={su8}");
    }

    #[test]
    fn memory_bound_phase_does_not_scale() {
        let s = sim();
        let p = Program::new(
            "m",
            vec![Step::Parallel {
                ops: 1e6,
                bytes: 1e9,
                imbalance: 1.0,
            }],
        );
        let su = s.speedup(&p, 8);
        assert!(su < 1.5, "memory-bound speedup should flatten: {su}");
    }

    #[test]
    fn imbalance_halves_scaling() {
        let s = sim();
        let balanced = pure_compute(1e9);
        let skewed = Program::new(
            "s",
            vec![Step::Parallel {
                ops: 1e9,
                bytes: 0.0,
                imbalance: 2.0,
            }],
        );
        assert!(s.speedup(&skewed, 4) < s.speedup(&balanced, 4) / 1.8);
    }

    #[test]
    fn critical_serialises() {
        let s = sim();
        let p = Program::new(
            "crit",
            vec![Step::Critical {
                entries: 1e6,
                ops_each: 10.0,
                overlap_ops: 1e8,
                bytes: 0.0,
            }],
        );
        let su = s.speedup(&p, 8);
        // 1e6 entries × ~0.17us ≈ 170ms serial vs 31ms compute: bounded.
        assert!(su < 2.0, "critical-bound speedup: {su}");
    }

    #[test]
    fn fine_grained_locks_scale_better_than_one_lock() {
        let s = sim();
        let shared = Program::new(
            "crit",
            vec![Step::Critical {
                entries: 1e5,
                ops_each: 10.0,
                overlap_ops: 1e8,
                bytes: 0.0,
            }],
        );
        let fine = Program::new(
            "locks",
            vec![Step::Locked {
                entries: 1e5,
                ops_each: 10.0,
                nlocks: 1e4,
                overlap_ops: 1e8,
                bytes: 0.0,
            }],
        );
        assert!(s.speedup(&fine, 8) > s.speedup(&shared, 8));
    }

    #[test]
    fn barriers_hurt_more_with_more_threads() {
        let s = sim();
        let mut steps = Vec::new();
        for _ in 0..10_000 {
            steps.push(Step::Parallel {
                ops: 1e4,
                bytes: 0.0,
                imbalance: 1.0,
            });
            steps.push(Step::Barrier);
        }
        let p = Program::new("b", steps);
        let su2 = s.speedup(&p, 2);
        let su8 = s.speedup(&p, 8);
        // Barrier overhead eats the gains as t grows.
        assert!(su8 < su2 * 3.0, "su2={su2} su8={su8}");
    }

    fn contended(step: fn(f64) -> Step) -> Program {
        Program::new("contended", vec![step(2e5)])
    }

    fn crit(entries: f64) -> Step {
        Step::Critical {
            entries,
            ops_each: 10.0,
            overlap_ops: 0.0,
            bytes: 0.0,
        }
    }

    fn nrcrit(entries: f64) -> Step {
        Step::NrCritical {
            entries,
            ops_each: 10.0,
            overlap_ops: 0.0,
            bytes: 0.0,
        }
    }

    #[test]
    fn nr_has_a_contention_crossover_against_one_lock() {
        // The NR model must lose to the plain lock uncontended (protocol
        // overhead) and win at scale (no team-wide queueing blow-up):
        // the crossover the BENCH_nr sweep measures.
        let s = Simulator::new(Machine::xeon());
        let lock = contended(crit);
        let nr = contended(nrcrit);
        assert!(
            s.run(&nr, 1) > s.run(&lock, 1),
            "uncontended, one lock must be cheaper than the NR protocol"
        );
        let t_max = s.machine.hw_threads;
        assert!(
            s.run(&nr, t_max) < s.run(&lock, t_max),
            "at full scale the lock's handoff storm must dominate"
        );
        // The flip happens at some intermediate team size and never
        // flips back.
        let mut crossed = false;
        for t in 1..=t_max {
            let nr_wins = s.run(&nr, t) < s.run(&lock, t);
            if crossed {
                assert!(nr_wins, "t={t}: the crossover must be monotone");
            }
            crossed = crossed || nr_wins;
        }
        assert!(crossed);
    }

    #[test]
    fn nr_cross_socket_handoff_costs_show_on_the_numa_machine() {
        // Spanning the second socket adds remote batch migrations: the
        // per-entry serial cost at 12 threads (2 sockets) exceeds that
        // at 6 (1 socket) — but stays far below the one-lock model's.
        let s = Simulator::new(Machine::xeon());
        let nr = contended(nrcrit);
        let lock = contended(crit);
        let one_socket = s.run(&nr, 6);
        let two_sockets = s.run(&nr, 12);
        assert!(
            two_sockets < one_socket * 1.5,
            "replication must absorb most of the cross-socket cost: {one_socket} → {two_sockets}"
        );
        assert!(s.run(&lock, 12) > two_sockets * 2.0);
    }

    fn skewed_parallel(imbalance: f64) -> Program {
        Program::new(
            "p",
            vec![Step::Parallel {
                ops: 1e9,
                bytes: 0.0,
                imbalance,
            }],
        )
    }

    fn adaptive(imbalance: f64, chunks: f64) -> Program {
        Program::new(
            "a",
            vec![Step::AdaptiveChunk {
                ops: 1e9,
                bytes: 0.0,
                imbalance,
                chunks_per_thread: chunks,
            }],
        )
    }

    #[test]
    fn adaptive_chunking_smooths_imbalance() {
        // The residual imbalance after 16 refinements is 1 + 1/16: the
        // adaptive phase must land close to the balanced wall time while
        // the fixed block schedule eats the full 2x overload.
        let s = sim();
        let t = 4;
        let block = s.run(&skewed_parallel(2.0), t);
        let ad = s.run(&adaptive(2.0, 16.0), t);
        let ideal = s.run(&skewed_parallel(1.0), t);
        assert!(ad < block * 0.6, "adaptive {ad} vs block {block}");
        assert!(ad < ideal * 1.15, "adaptive {ad} vs ideal {ideal}");
    }

    #[test]
    fn adaptive_matches_static_block_when_balanced() {
        // With nothing to refine, the only cost over a plain parallel
        // phase is the per-chunk dispensing — a few percent, not more.
        let s = sim();
        let t = 4;
        let block = s.run(&skewed_parallel(1.0), t);
        let ad = s.run(&adaptive(1.0, 8.0), t);
        assert!(ad >= block, "dispensing cannot be free");
        assert!(ad < block * 1.05, "adaptive {ad} vs block {block}");
    }

    #[test]
    fn adaptive_remote_steals_cost_more_on_the_numa_machine() {
        // Same skewed program on the two-socket Xeon: spanning the
        // second socket adds remote adoptions, but refinement must keep
        // the phase well under the unrefined block time.
        let s = Simulator::new(Machine::xeon());
        let one_socket = s.run(&adaptive(2.0, 16.0), 6);
        let two_sockets = s.run(&adaptive(2.0, 16.0), 12);
        assert!(two_sockets < one_socket, "more threads must still help");
        assert!(s.run(&skewed_parallel(2.0), 12) > two_sockets * 1.5);
    }

    fn barriered_rounds(ops: f64, rounds: usize, imbalance: f64) -> Program {
        Program::repeat(
            "rounds",
            vec![
                Step::Parallel {
                    ops: ops / rounds as f64,
                    bytes: 0.0,
                    imbalance,
                },
                Step::Barrier,
            ],
            rounds,
        )
    }

    #[test]
    fn task_dag_beats_barriered_rounds_on_skewed_work() {
        // Same total work, 20 rounds: the barriered twin pays each
        // round's worst-thread overload plus a barrier; the dag's wall
        // is bounded by its critical path, below that envelope on a
        // skewed graph.
        let s = sim();
        let t = 4;
        let ops = 1e9;
        let dag = Program::new(
            "dag",
            vec![Step::TaskDag {
                ops,
                bytes: 0.0,
                crit_ops: 1.2 * ops / t as f64,
                tasks: 20.0 * 8.0,
            }],
        );
        let phased = barriered_rounds(ops, 20, 2.0);
        assert!(s.run(&dag, t) < s.run(&phased, t));
    }

    #[test]
    fn task_dag_cannot_beat_its_critical_path() {
        let s = sim();
        let crit = 6e8;
        let dag = Program::new(
            "dag",
            vec![Step::TaskDag {
                ops: 1e9,
                bytes: 0.0,
                crit_ops: crit,
                tasks: 64.0,
            }],
        );
        let floor = crit / (s.machine.ops_per_us * s.machine.thread_speed(4));
        assert!(s.run(&dag, 4) >= floor);
        // More threads past the critical-path bound stop helping: the
        // chain dominates at both t=2 and t=4.
        assert!(s.run(&dag, 4) < s.run(&dag, 2) * 1.01);
    }

    #[test]
    fn task_dag_over_decomposition_costs() {
        let s = sim();
        let mk = |tasks: f64| {
            Program::new(
                "dag",
                vec![Step::TaskDag {
                    ops: 1e7,
                    bytes: 0.0,
                    crit_ops: 2.5e6,
                    tasks,
                }],
            )
        };
        assert!(s.run(&mk(100_000.0), 4) > s.run(&mk(100.0), 4) * 1.5);
    }

    #[test]
    fn run_is_monotone_in_work() {
        let s = sim();
        assert!(s.run(&pure_compute(2e9), 4) > s.run(&pure_compute(1e9), 4));
    }

    #[test]
    fn hidden_critical_costs_nothing_extra() {
        // A rarely-entered critical section under heavy compute is fully
        // hidden: near-ideal scaling.
        let s = sim();
        let p = Program::new(
            "hidden",
            vec![Step::Critical {
                entries: 100.0,
                ops_each: 5.0,
                overlap_ops: 1e9,
                bytes: 0.0,
            }],
        );
        let su = s.speedup(&p, 4);
        assert!(su > 3.9, "hidden critical should scale: {su}");
    }

    #[test]
    fn serial_step_ignores_team_size() {
        let s = sim();
        let p = Program::new(
            "ser",
            vec![Step::Serial {
                ops: 1e6,
                bytes: 0.0,
            }],
        );
        assert_eq!(s.run(&p, 1), s.run(&p, 8));
    }
}
