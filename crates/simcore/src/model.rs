//! Structural program models: bulk-synchronous step sequences.

use serde::{Deserialize, Serialize};

/// One bulk-synchronous step of a modelled program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Step {
    /// Work shared across the team: `ops` total abstract operations and
    /// `bytes` total memory traffic; the phase obeys a roofline —
    /// wall time = max(compute time of the most loaded thread, memory
    /// time at the shared bandwidth).
    Parallel {
        /// Total operations in the phase.
        ops: f64,
        /// Total bytes moved through the shared memory system.
        bytes: f64,
        /// Load imbalance: most-loaded thread's share relative to the
        /// even share (1.0 = perfectly balanced; 2.0 ≈ a triangular loop
        /// under a block schedule).
        imbalance: f64,
    },
    /// Every thread redundantly executes the same work (e.g. the pivot
    /// search each LUFact thread repeats).
    Replicated {
        /// Operations per thread.
        ops: f64,
        /// Bytes per thread.
        bytes: f64,
    },
    /// Only the master executes; the team waits (a `@Master` +
    /// barrier pattern).
    Serial {
        /// Operations on the master.
        ops: f64,
        /// Bytes moved by the master.
        bytes: f64,
    },
    /// A team barrier.
    Barrier,
    /// A parallel phase containing `entries` critical-section entries of
    /// `ops_each` operations guarded by **one** lock, overlapped with
    /// `overlap_ops` of ordinary work-shared compute. The serialised lock
    /// time can hide under the compute, but once the lock is busy a
    /// significant fraction of the time, queueing and cache-line handoffs
    /// inflate it (utilisation-dependent contention).
    Critical {
        /// Total entries across the team.
        entries: f64,
        /// Operations per entry (inside the lock).
        ops_each: f64,
        /// Work-shared compute ops overlapping the critical entries.
        overlap_ops: f64,
        /// Memory traffic of the phase.
        bytes: f64,
    },
    /// A parallel phase with fine-grained locked updates spread over
    /// `nlocks` independent locks (the per-particle locks variant):
    /// lock costs parallelise, with a collision probability
    /// ∝ threads/nlocks.
    Locked {
        /// Total locked updates across the team.
        entries: f64,
        /// Operations per update.
        ops_each: f64,
        /// Number of distinct locks.
        nlocks: f64,
        /// Work-shared compute ops overlapping the updates.
        overlap_ops: f64,
        /// Memory traffic of the phase.
        bytes: f64,
    },
}

/// A modelled program: a name plus its step sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Display name (benchmark / variant).
    pub name: String,
    /// Bulk-synchronous steps.
    pub steps: Vec<Step>,
}

impl Program {
    /// Build a program.
    pub fn new(name: impl Into<String>, steps: Vec<Step>) -> Self {
        Self { name: name.into(), steps }
    }

    /// Total modelled operations (compute volume), for sanity checks.
    pub fn total_ops(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Parallel { ops, .. } => *ops,
                Step::Replicated { ops, .. } => *ops,
                Step::Serial { ops, .. } => *ops,
                Step::Critical { entries, ops_each, overlap_ops, .. } => entries * ops_each + overlap_ops,
                Step::Locked { entries, ops_each, overlap_ops, .. } => entries * ops_each + overlap_ops,
                Step::Barrier => 0.0,
            })
            .sum()
    }

    /// Repeat a step group `times` times (iteration loops).
    pub fn repeat(name: impl Into<String>, group: Vec<Step>, times: usize) -> Self {
        let mut steps = Vec::with_capacity(group.len() * times);
        for _ in 0..times {
            steps.extend(group.iter().cloned());
        }
        Self { name: name.into(), steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_ops_sums_all_step_kinds() {
        let p = Program::new(
            "t",
            vec![
                Step::Parallel { ops: 100.0, bytes: 0.0, imbalance: 1.0 },
                Step::Replicated { ops: 10.0, bytes: 0.0 },
                Step::Serial { ops: 5.0, bytes: 0.0 },
                Step::Critical { entries: 4.0, ops_each: 2.0, overlap_ops: 7.0, bytes: 0.0 },
                Step::Locked { entries: 3.0, ops_each: 1.0, nlocks: 8.0, overlap_ops: 2.0, bytes: 0.0 },
                Step::Barrier,
            ],
        );
        assert_eq!(p.total_ops(), 100.0 + 10.0 + 5.0 + 8.0 + 7.0 + 3.0 + 2.0);
    }

    #[test]
    fn repeat_multiplies_steps() {
        let p = Program::repeat("r", vec![Step::Barrier, Step::Barrier], 5);
        assert_eq!(p.steps.len(), 10);
    }
}
