//! Structural program models: bulk-synchronous step sequences.

use crate::json::Json;

/// One bulk-synchronous step of a modelled program.
#[derive(Debug, Clone)]
pub enum Step {
    /// Work shared across the team: `ops` total abstract operations and
    /// `bytes` total memory traffic; the phase obeys a roofline —
    /// wall time = max(compute time of the most loaded thread, memory
    /// time at the shared bandwidth).
    Parallel {
        /// Total operations in the phase.
        ops: f64,
        /// Total bytes moved through the shared memory system.
        bytes: f64,
        /// Load imbalance: most-loaded thread's share relative to the
        /// even share (1.0 = perfectly balanced; 2.0 ≈ a triangular loop
        /// under a block schedule).
        imbalance: f64,
    },
    /// Every thread redundantly executes the same work (e.g. the pivot
    /// search each LUFact thread repeats).
    Replicated {
        /// Operations per thread.
        ops: f64,
        /// Bytes per thread.
        bytes: f64,
    },
    /// Only the master executes; the team waits (a `@Master` +
    /// barrier pattern).
    Serial {
        /// Operations on the master.
        ops: f64,
        /// Bytes moved by the master.
        bytes: f64,
    },
    /// A team barrier.
    Barrier,
    /// A parallel phase containing `entries` critical-section entries of
    /// `ops_each` operations guarded by **one** lock, overlapped with
    /// `overlap_ops` of ordinary work-shared compute. The serialised lock
    /// time can hide under the compute, but once the lock is busy a
    /// significant fraction of the time, queueing and cache-line handoffs
    /// inflate it (utilisation-dependent contention).
    Critical {
        /// Total entries across the team.
        entries: f64,
        /// Operations per entry (inside the lock).
        ops_each: f64,
        /// Work-shared compute ops overlapping the critical entries.
        overlap_ops: f64,
        /// Memory traffic of the phase.
        bytes: f64,
    },
    /// A parallel phase whose `entries` guarded updates are served by
    /// flat-combining node replication (`aomp::nr`) instead of one
    /// lock: posters publish ops into per-replica slots, one combiner
    /// per socket batches them through a shared log onto its socket's
    /// replica. The serial path is one replica's replay — per-op apply
    /// cost plus per-*batch* lock and cache-line migration costs — and
    /// does not inflate with team-wide queueing the way
    /// [`Critical`](Step::Critical) does; the price is per-op publish
    /// overhead that a plain lock does not pay, so one lock wins at low
    /// thread counts (the measured crossover).
    NrCritical {
        /// Total guarded updates across the team.
        entries: f64,
        /// Operations per update (applied on every replica).
        ops_each: f64,
        /// Work-shared compute ops overlapping the updates.
        overlap_ops: f64,
        /// Memory traffic of the phase.
        bytes: f64,
    },
    /// A work-shared phase run under the *adaptive* schedule
    /// (`aomp::schedule::Schedule::Adaptive`): the dispenser refines hot
    /// threads' remaining ranges into smaller chunks and idle threads
    /// adopt half of a loaded peer's remainder, so only a chunk-grained
    /// residual of the input imbalance survives. In exchange the phase
    /// pays per-chunk dispensing (one range-lock entry each) and
    /// per-adoption cache-line migrations, remote-socket adoptions
    /// costing an extra handoff.
    AdaptiveChunk {
        /// Total operations in the phase.
        ops: f64,
        /// Total bytes moved through the shared memory system.
        bytes: f64,
        /// Input load imbalance the dispenser starts from (as in
        /// [`Parallel`](Step::Parallel): most-loaded thread's share over
        /// the even share).
        imbalance: f64,
        /// Chunks dispensed per thread — ≈ log2(block/min_chunk) while
        /// cold, more where the latency signal forces refinement.
        chunks_per_thread: f64,
    },
    /// A dependent task graph (`aomp::deps`) replacing a barrier-phased
    /// loop nest: tasks release successors as their `depend` tags
    /// resolve, so the wall time is bounded below by the *critical path*
    /// (`crit_ops`, the ops-weighted longest dependence chain) rather
    /// than by the sum of per-round maxima the barriered twin pays. Each
    /// task pays dependence bookkeeping (wiring its tags under the group
    /// lock plus the release cache-line handoff), so over-decomposing
    /// has a measurable price.
    TaskDag {
        /// Total operations across all tasks.
        ops: f64,
        /// Total bytes moved through the shared memory system.
        bytes: f64,
        /// Operations along the longest dependence chain.
        crit_ops: f64,
        /// Number of tasks in the graph.
        tasks: f64,
    },
    /// A parallel phase with fine-grained locked updates spread over
    /// `nlocks` independent locks (the per-particle locks variant):
    /// lock costs parallelise, with a collision probability
    /// ∝ threads/nlocks.
    Locked {
        /// Total locked updates across the team.
        entries: f64,
        /// Operations per update.
        ops_each: f64,
        /// Number of distinct locks.
        nlocks: f64,
        /// Work-shared compute ops overlapping the updates.
        overlap_ops: f64,
        /// Memory traffic of the phase.
        bytes: f64,
    },
}

impl Step {
    /// JSON encoding, externally tagged like the serde derive this
    /// replaced: `{"Parallel": {"ops": …}}`, `"Barrier"`.
    pub fn to_json(&self) -> Json {
        let obj = |tag: &str, fields: Vec<(&str, f64)>| {
            Json::Obj(vec![(
                tag.to_owned(),
                Json::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_owned(), Json::Num(v)))
                        .collect(),
                ),
            )])
        };
        match *self {
            Step::Parallel {
                ops,
                bytes,
                imbalance,
            } => obj(
                "Parallel",
                vec![("ops", ops), ("bytes", bytes), ("imbalance", imbalance)],
            ),
            Step::Replicated { ops, bytes } => {
                obj("Replicated", vec![("ops", ops), ("bytes", bytes)])
            }
            Step::Serial { ops, bytes } => obj("Serial", vec![("ops", ops), ("bytes", bytes)]),
            Step::Barrier => Json::Str("Barrier".to_owned()),
            Step::Critical {
                entries,
                ops_each,
                overlap_ops,
                bytes,
            } => obj(
                "Critical",
                vec![
                    ("entries", entries),
                    ("ops_each", ops_each),
                    ("overlap_ops", overlap_ops),
                    ("bytes", bytes),
                ],
            ),
            Step::NrCritical {
                entries,
                ops_each,
                overlap_ops,
                bytes,
            } => obj(
                "NrCritical",
                vec![
                    ("entries", entries),
                    ("ops_each", ops_each),
                    ("overlap_ops", overlap_ops),
                    ("bytes", bytes),
                ],
            ),
            Step::AdaptiveChunk {
                ops,
                bytes,
                imbalance,
                chunks_per_thread,
            } => obj(
                "AdaptiveChunk",
                vec![
                    ("ops", ops),
                    ("bytes", bytes),
                    ("imbalance", imbalance),
                    ("chunks_per_thread", chunks_per_thread),
                ],
            ),
            Step::TaskDag {
                ops,
                bytes,
                crit_ops,
                tasks,
            } => obj(
                "TaskDag",
                vec![
                    ("ops", ops),
                    ("bytes", bytes),
                    ("crit_ops", crit_ops),
                    ("tasks", tasks),
                ],
            ),
            Step::Locked {
                entries,
                ops_each,
                nlocks,
                overlap_ops,
                bytes,
            } => obj(
                "Locked",
                vec![
                    ("entries", entries),
                    ("ops_each", ops_each),
                    ("nlocks", nlocks),
                    ("overlap_ops", overlap_ops),
                    ("bytes", bytes),
                ],
            ),
        }
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Result<Step, String> {
        if j.as_str() == Some("Barrier") {
            return Ok(Step::Barrier);
        }
        let (tag, body) = match j {
            Json::Obj(pairs) if pairs.len() == 1 => (&pairs[0].0, &pairs[0].1),
            _ => return Err("step must be \"Barrier\" or a single-key object".to_owned()),
        };
        match tag.as_str() {
            "Parallel" => Ok(Step::Parallel {
                ops: body.f64_field("ops")?,
                bytes: body.f64_field("bytes")?,
                imbalance: body.f64_field("imbalance")?,
            }),
            "Replicated" => Ok(Step::Replicated {
                ops: body.f64_field("ops")?,
                bytes: body.f64_field("bytes")?,
            }),
            "Serial" => Ok(Step::Serial {
                ops: body.f64_field("ops")?,
                bytes: body.f64_field("bytes")?,
            }),
            "Critical" => Ok(Step::Critical {
                entries: body.f64_field("entries")?,
                ops_each: body.f64_field("ops_each")?,
                overlap_ops: body.f64_field("overlap_ops")?,
                bytes: body.f64_field("bytes")?,
            }),
            "NrCritical" => Ok(Step::NrCritical {
                entries: body.f64_field("entries")?,
                ops_each: body.f64_field("ops_each")?,
                overlap_ops: body.f64_field("overlap_ops")?,
                bytes: body.f64_field("bytes")?,
            }),
            "AdaptiveChunk" => Ok(Step::AdaptiveChunk {
                ops: body.f64_field("ops")?,
                bytes: body.f64_field("bytes")?,
                imbalance: body.f64_field("imbalance")?,
                chunks_per_thread: body.f64_field("chunks_per_thread")?,
            }),
            "TaskDag" => Ok(Step::TaskDag {
                ops: body.f64_field("ops")?,
                bytes: body.f64_field("bytes")?,
                crit_ops: body.f64_field("crit_ops")?,
                tasks: body.f64_field("tasks")?,
            }),
            "Locked" => Ok(Step::Locked {
                entries: body.f64_field("entries")?,
                ops_each: body.f64_field("ops_each")?,
                nlocks: body.f64_field("nlocks")?,
                overlap_ops: body.f64_field("overlap_ops")?,
                bytes: body.f64_field("bytes")?,
            }),
            other => Err(format!("unknown step kind `{other}`")),
        }
    }
}

/// A modelled program: a name plus its step sequence.
#[derive(Debug, Clone)]
pub struct Program {
    /// Display name (benchmark / variant).
    pub name: String,
    /// Bulk-synchronous steps.
    pub steps: Vec<Step>,
}

impl Program {
    /// Build a program.
    pub fn new(name: impl Into<String>, steps: Vec<Step>) -> Self {
        Self {
            name: name.into(),
            steps,
        }
    }

    /// Total modelled operations (compute volume), for sanity checks.
    pub fn total_ops(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Parallel { ops, .. } => *ops,
                Step::Replicated { ops, .. } => *ops,
                Step::Serial { ops, .. } => *ops,
                Step::AdaptiveChunk { ops, .. } => *ops,
                Step::TaskDag { ops, .. } => *ops,
                Step::Critical {
                    entries,
                    ops_each,
                    overlap_ops,
                    ..
                } => entries * ops_each + overlap_ops,
                Step::NrCritical {
                    entries,
                    ops_each,
                    overlap_ops,
                    ..
                } => entries * ops_each + overlap_ops,
                Step::Locked {
                    entries,
                    ops_each,
                    overlap_ops,
                    ..
                } => entries * ops_each + overlap_ops,
                Step::Barrier => 0.0,
            })
            .sum()
    }

    /// JSON encoding (`{"name": …, "steps": […]}`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "steps".to_owned(),
                Json::Arr(self.steps.iter().map(Step::to_json).collect()),
            ),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Result<Program, String> {
        let name = j.str_field("name")?;
        let steps = j
            .get("steps")
            .and_then(Json::as_array)
            .ok_or("missing array field `steps`")?
            .iter()
            .map(Step::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program { name, steps })
    }

    /// Repeat a step group `times` times (iteration loops).
    pub fn repeat(name: impl Into<String>, group: Vec<Step>, times: usize) -> Self {
        let mut steps = Vec::with_capacity(group.len() * times);
        for _ in 0..times {
            steps.extend(group.iter().cloned());
        }
        Self {
            name: name.into(),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_ops_sums_all_step_kinds() {
        let p = Program::new(
            "t",
            vec![
                Step::Parallel {
                    ops: 100.0,
                    bytes: 0.0,
                    imbalance: 1.0,
                },
                Step::Replicated {
                    ops: 10.0,
                    bytes: 0.0,
                },
                Step::Serial {
                    ops: 5.0,
                    bytes: 0.0,
                },
                Step::Critical {
                    entries: 4.0,
                    ops_each: 2.0,
                    overlap_ops: 7.0,
                    bytes: 0.0,
                },
                Step::Locked {
                    entries: 3.0,
                    ops_each: 1.0,
                    nlocks: 8.0,
                    overlap_ops: 2.0,
                    bytes: 0.0,
                },
                Step::Barrier,
            ],
        );
        assert_eq!(p.total_ops(), 100.0 + 10.0 + 5.0 + 8.0 + 7.0 + 3.0 + 2.0);
    }

    #[test]
    fn nr_critical_round_trips_through_json() {
        let step = Step::NrCritical {
            entries: 4.0,
            ops_each: 2.0,
            overlap_ops: 7.0,
            bytes: 64.0,
        };
        let back = Step::from_json(&step.to_json()).expect("round trip");
        let Step::NrCritical {
            entries,
            ops_each,
            overlap_ops,
            bytes,
        } = back
        else {
            panic!("wrong variant after round trip");
        };
        assert_eq!(
            (entries, ops_each, overlap_ops, bytes),
            (4.0, 2.0, 7.0, 64.0)
        );
    }

    #[test]
    fn adaptive_chunk_round_trips_through_json() {
        let step = Step::AdaptiveChunk {
            ops: 1e6,
            bytes: 64.0,
            imbalance: 2.5,
            chunks_per_thread: 12.0,
        };
        let back = Step::from_json(&step.to_json()).expect("round trip");
        let Step::AdaptiveChunk {
            ops,
            bytes,
            imbalance,
            chunks_per_thread,
        } = back
        else {
            panic!("wrong variant after round trip");
        };
        assert_eq!(
            (ops, bytes, imbalance, chunks_per_thread),
            (1e6, 64.0, 2.5, 12.0)
        );
    }

    #[test]
    fn task_dag_round_trips_through_json() {
        let step = Step::TaskDag {
            ops: 1e9,
            bytes: 128.0,
            crit_ops: 3e8,
            tasks: 160.0,
        };
        let back = Step::from_json(&step.to_json()).expect("round trip");
        let Step::TaskDag {
            ops,
            bytes,
            crit_ops,
            tasks,
        } = back
        else {
            panic!("wrong variant after round trip");
        };
        assert_eq!((ops, bytes, crit_ops, tasks), (1e9, 128.0, 3e8, 160.0));
    }

    #[test]
    fn repeat_multiplies_steps() {
        let p = Program::repeat("r", vec![Step::Barrier, Step::Barrier], 5);
        assert_eq!(p.steps.len(), 10);
    }
}
