//! Linearizability of `aomp::nr` replicated state under schedule
//! exploration, with the race oracle armed.
//!
//! The structure under test is a prefix-sum counter: every write op
//! increments and returns the post-increment total. Under *any*
//! single-lock (sequentially consistent) execution, the multiset of
//! write responses is exactly `{1, 2, …, N}` and each thread's own
//! responses are strictly increasing (a thread's next op linearizes
//! after its previous one returned). Those two properties — plus the
//! final total — characterise the counter's linearizations completely,
//! so asserting them on every explored schedule proves the replicated
//! execution is indistinguishable from the single-lock reference.
//!
//! The counter's state lives in an [`aomp::check::Tracked`] cell, so
//! with [`Explorer::races`] on, every `dispatch`/`dispatch_mut` access
//! is judged against the happens-before relation built from the
//! `NrAppend`/`NrCombine`/`NrSync` hook events: zero races proves the
//! combiner publish → sync edges cover every cross-thread application
//! of a logged op.

use aomp::check::Tracked;
use aomp::nr::{Dispatch, Replicated};
use aomp::prelude::*;
use aomp_check::{seeds_from_env, Explorer};
use std::sync::Mutex;

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 3;

/// The single-threaded structure being replicated: a counter whose
/// write op returns the post-increment value (a distinct "ticket" per
/// linearized op). State is a tracked cell so the race oracle sees
/// every access.
struct Counter {
    v: Tracked<u64>,
}

impl Counter {
    fn new(v: u64) -> Self {
        Counter {
            v: Tracked::new("nr.counter", v),
        }
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        // Only called at construction (one clone per replica), before
        // the team exists — outside-team tracked accesses are skipped.
        Counter::new(unsafe { self.v.read() })
    }
}

/// Unit write op: increment and return the new total.
#[derive(Clone, Debug)]
struct Inc;

impl Dispatch for Counter {
    type ReadOp = ();
    type WriteOp = Inc;
    type Response = u64;

    fn dispatch(&self, _op: &()) -> u64 {
        unsafe { self.v.read() }
    }

    fn dispatch_mut(&mut self, _op: &Inc) -> u64 {
        let n = unsafe { self.v.read() } + 1;
        unsafe { self.v.set(n) };
        n
    }
}

/// Run the replicated counter on a team; returns each thread's response
/// sequence (indexed by tid) and the final total.
fn nr_run(replicas: usize) -> (Vec<Vec<u64>>, u64) {
    let repl = Replicated::with_config(Counter::new(0), replicas, 128);
    let per: Mutex<Vec<Vec<u64>>> = Mutex::new(vec![Vec::new(); THREADS]);
    region::parallel_with(RegionConfig::new().threads(THREADS), || {
        let mut mine = Vec::with_capacity(OPS_PER_THREAD);
        for _ in 0..OPS_PER_THREAD {
            mine.push(repl.execute(Inc));
        }
        per.lock().unwrap()[thread_id()] = mine;
    });
    let total = repl.execute_ro(&());
    (per.into_inner().unwrap(), total)
}

/// The same program against the paper's single named lock — the
/// reference implementation the replicated one must be indistinguishable
/// from.
fn lock_run() -> (Vec<Vec<u64>>, u64) {
    let h = CriticalHandle::new();
    let cell = Tracked::new("lock.counter", 0u64);
    let per: Mutex<Vec<Vec<u64>>> = Mutex::new(vec![Vec::new(); THREADS]);
    region::parallel_with(RegionConfig::new().threads(THREADS), || {
        let mut mine = Vec::with_capacity(OPS_PER_THREAD);
        for _ in 0..OPS_PER_THREAD {
            mine.push(h.run(|| unsafe {
                let n = cell.read() + 1;
                cell.set(n);
                n
            }));
        }
        per.lock().unwrap()[thread_id()] = mine;
    });
    let total = unsafe { cell.read() };
    (per.into_inner().unwrap(), total)
}

/// The schedule-independent canonical form every linearization maps to:
/// the sorted response multiset plus the final total. Panics (failing
/// the schedule) if the per-thread sequences violate program order.
fn canonicalize(per: &[Vec<u64>], total: u64) -> (Vec<u64>, u64) {
    for (tid, seq) in per.iter().enumerate() {
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "tid {tid}: responses must rise in program order, got {seq:?}"
        );
    }
    let mut all: Vec<u64> = per.iter().flatten().copied().collect();
    all.sort_unstable();
    (all, total)
}

#[test]
fn replicated_counter_linearizes_on_every_schedule() {
    let n = (THREADS * OPS_PER_THREAD) as u64;
    let expected: Vec<u64> = (1..=n).collect();
    let report = Explorer::new()
        .races(true)
        .random(seeds_from_env(24), 0x11EA_A12E, || {
            let (per, total) = nr_run(2);
            let (all, total) = canonicalize(&per, total);
            assert_eq!(
                all, expected,
                "write responses must be a permutation of 1..={n}"
            );
            assert_eq!(total, n, "the final read must observe every write");
        });
    report.assert_ok();
    assert!(
        report.runs.iter().all(|r| r.events > 0),
        "every schedule must drive the controller through hook events"
    );
    assert!(
        report.distinct_schedules() > 1,
        "the replicated program must expose real interleaving choice"
    );
}

#[test]
fn replicated_results_equal_single_lock_reference_bitwise() {
    // Both programs run in the *same* explored schedule; their canonical
    // forms must agree bitwise — the replicated structure is a drop-in
    // for the lock on every interleaving the explorer can produce.
    Explorer::new()
        .races(true)
        .random(seeds_from_env(16), 0x5A5A_11EA, || {
            let (nr_per, nr_total) = nr_run(2);
            let (lk_per, lk_total) = lock_run();
            assert_eq!(
                canonicalize(&nr_per, nr_total),
                canonicalize(&lk_per, lk_total),
                "replicated and single-lock executions must be indistinguishable"
            );
        })
        .assert_ok();
}

#[test]
fn single_replica_degenerates_to_flat_combining_and_still_linearizes() {
    let n = (THREADS * OPS_PER_THREAD) as u64;
    Explorer::new()
        .races(true)
        .random(seeds_from_env(12), 0x01E_01E, || {
            let (per, total) = nr_run(1);
            let (all, _) = canonicalize(&per, total);
            assert_eq!(all, (1..=n).collect::<Vec<u64>>());
            assert_eq!(total, n);
        })
        .assert_ok();
}

/// Satellite: toggling metrics must not change the explored schedule
/// space — the instrumented acquire paths may count, but must not add,
/// remove, or reorder decision points.
#[test]
fn metrics_toggle_leaves_explored_traces_identical() {
    let program = || {
        let (per, total) = nr_run(2);
        canonicalize(&per, total);
        assert_eq!(total, (THREADS * OPS_PER_THREAD) as u64);
    };
    let digests = |metrics: bool| -> Vec<u64> {
        aomp::obs::set_metrics(metrics);
        let r = Explorer::new()
            .races(false)
            .random(seeds_from_env(12), 0xD16E_57_u64, program);
        aomp::obs::set_metrics(false);
        r.assert_ok();
        r.runs.iter().map(|run| run.trace.digest()).collect()
    };
    let off = digests(false);
    let on = digests(true);
    assert_eq!(
        off, on,
        "metrics gating must be invisible to the schedule space"
    );
}
