//! Property tests for the vector-clock layer: seeded generators produce
//! *well-formed* `HookEvent` streams — full-team barrier rounds between
//! phases of member-disjoint accesses, matched critical acquire/release
//! around every shared-counter access — and the tracker must never
//! report a race on them. Then the same stream with exactly one
//! synchronisation edge removed (one barrier round, or one lock acquire)
//! must report a race: the mutation is precisely what made the access
//! pair concurrent.
//!
//! The generators rotate location ownership by one member per phase and
//! rotate the lock holder per episode, so every dropped edge is
//! guaranteed to leave a cross-thread conflicting pair behind — the
//! mutated stream is racy by construction, not by luck.

use aomp::check::AccessEvent;
use aomp::hook::HookEvent;
use aomp_check::rng::SplitMix64;
use aomp_check::vclock::RaceTracker;

const TEAM: usize = 1;

/// One element of a serialised schedule: a hook event or a tracked
/// access by a member.
#[derive(Debug, Clone)]
enum Item {
    Ev(HookEvent),
    Acc(usize, AccessEvent),
}

fn access(loc: usize, is_write: bool) -> AccessEvent {
    AccessEvent {
        addr: 0x1000 + loc * 8,
        name: "arr",
        index: loc,
        is_write,
    }
}

fn barrier_exit(tid: usize) -> HookEvent {
    HookEvent::BarrierExit {
        team: TEAM,
        tid,
        leader: tid == 0,
    }
}

fn run(items: &[Item]) -> RaceTracker {
    let mut tr = RaceTracker::new();
    for it in items {
        match it {
            Item::Ev(e) => tr.on_event(e),
            Item::Acc(tid, a) => tr.on_access(*tid, a),
        }
    }
    tr
}

fn shuffle<T>(r: &mut SplitMix64, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        let j = r.below(i + 1);
        v.swap(i, j);
    }
}

fn region_start(n: usize) -> Vec<Item> {
    let mut items = vec![Item::Ev(HookEvent::RegionStart {
        team: TEAM,
        size: n,
        level: 1,
    })];
    for t in 0..n {
        items.push(Item::Ev(HookEvent::MemberStart { team: TEAM, tid: t }));
    }
    items
}

fn region_end(n: usize) -> Vec<Item> {
    let mut items: Vec<Item> = (0..n)
        .map(|t| Item::Ev(HookEvent::MemberEnd { team: TEAM, tid: t }))
        .collect();
    items.push(Item::Ev(HookEvent::RegionEnd { team: TEAM }));
    items
}

/// A phased program: `phases` phases of member-disjoint array accesses
/// (member `t` owns location `l` in phase `p` iff `l ≡ t + p (mod n)`,
/// so every location changes owner every phase), each phase boundary a
/// full barrier round in random member order. Returns the items plus
/// the index ranges of each barrier round, for the mutation test.
fn phased_program(r: &mut SplitMix64, n: usize, phases: usize) -> (Vec<Item>, Vec<(usize, usize)>) {
    let locations = 2 * n;
    let mut items = region_start(n);
    let mut rounds = Vec::new();
    for p in 0..phases {
        // Every member writes each owned location once and re-reads a
        // random owned location; the per-phase item order is shuffled
        // (ownership is disjoint, so any serialisation is race-free).
        let mut phase: Vec<Item> = Vec::new();
        for t in 0..n {
            for l in 0..locations {
                if l % n == (t + p) % n {
                    phase.push(Item::Acc(t, access(l, true)));
                    if r.below(2) == 0 {
                        phase.push(Item::Acc(t, access(l, false)));
                    }
                }
            }
        }
        shuffle(r, &mut phase);
        items.extend(phase);
        if p + 1 < phases {
            let start = items.len();
            let mut order: Vec<usize> = (0..n).collect();
            shuffle(r, &mut order);
            for t in order {
                items.push(Item::Ev(barrier_exit(t)));
            }
            rounds.push((start, items.len()));
        }
    }
    items.extend(region_end(n));
    (items, rounds)
}

/// A lock program: `episodes` critical episodes on one lock, the holder
/// rotating per episode (adjacent episodes always run on different
/// members), each episode a matched acquire → shared-counter write →
/// release. Returns the items plus the index of each episode's acquire.
fn lock_program(r: &mut SplitMix64, n: usize, episodes: usize) -> (Vec<Item>, Vec<usize>) {
    let mut items = region_start(n);
    let mut acquires = Vec::new();
    let base = r.below(n);
    for e in 0..episodes {
        let t = (base + e) % n;
        acquires.push(items.len());
        items.push(Item::Ev(HookEvent::CriticalAcquire {
            team: TEAM,
            tid: t,
            lock: 0xC,
        }));
        items.push(Item::Acc(t, access(500, true)));
        if r.below(2) == 0 {
            items.push(Item::Acc(t, access(500, false)));
        }
        items.push(Item::Ev(HookEvent::CriticalRelease {
            team: TEAM,
            tid: t,
            lock: 0xC,
        }));
    }
    items.extend(region_end(n));
    (items, acquires)
}

/// A node-replication program on one replicated structure: `episodes`
/// combining passes on replica 0, the combiner rotating per episode
/// (adjacent passes always run on different members). Episode `e` by
/// member `c`:
///
/// * a poster `p ≠ c` writes the op payload (location `700 + e`) and
///   publishes it (`NrAppend`),
/// * the combiner acquires (`NrCombine`), reads the payload, applies it
///   to the replica state (location 600, write), and releases
///   (`NrSync`).
///
/// Returns the items plus the index of each episode's `NrAppend` and
/// `NrCombine`, for the mutation tests: the append is what orders the
/// combiner's payload read after the poster's write; the combine is
/// what orders episode `e`'s state write after episode `e - 1`'s.
fn nr_program(
    r: &mut SplitMix64,
    n: usize,
    episodes: usize,
) -> (Vec<Item>, Vec<usize>, Vec<usize>) {
    const NR: usize = 7;
    let mut items = region_start(n);
    let mut appends = Vec::new();
    let mut combines = Vec::new();
    let base = r.below(n);
    for e in 0..episodes {
        let c = (base + e) % n;
        let p = (c + 1 + r.below(n - 1)) % n;
        items.push(Item::Acc(p, access(700 + e, true)));
        appends.push(items.len());
        items.push(Item::Ev(HookEvent::NrAppend {
            team: TEAM,
            tid: p,
            nr: NR,
            lo: e as u64,
            hi: e as u64 + 1,
        }));
        combines.push(items.len());
        items.push(Item::Ev(HookEvent::NrCombine {
            team: TEAM,
            tid: c,
            nr: NR,
            replica: 0,
            lo: e as u64,
            hi: e as u64 + 1,
        }));
        items.push(Item::Acc(c, access(700 + e, false)));
        items.push(Item::Acc(c, access(600, true)));
        if r.below(2) == 0 {
            items.push(Item::Acc(c, access(600, false)));
        }
        items.push(Item::Ev(HookEvent::NrSync {
            team: TEAM,
            tid: c,
            nr: NR,
            replica: 0,
            upto: e as u64 + 1,
        }));
    }
    items.extend(region_end(n));
    (items, appends, combines)
}

/// A dependence-chain program: `episodes` tasks passing one tracked
/// location (900) along a release→acquire chain, the runner rotating
/// per episode (adjacent tasks always run on different members).
/// Episode `e` by member `t`:
///
/// * for `e > 0`, the runner acquires its dependence node
///   (`TaskDepReady { node: NODE + e }`) — all its `depend` clauses are
///   satisfied,
/// * the task body reads the handoff location (for `e > 0`) and
///   rewrites it,
/// * completion satisfies the successor's dependence
///   (`TaskDepRelease { node: NODE + e + 1 }`).
///
/// Returns the items plus the index of each episode's release — the one
/// edge that orders episode `e + 1`'s accesses after episode `e`'s
/// write.
fn dep_program(r: &mut SplitMix64, n: usize, episodes: usize) -> (Vec<Item>, Vec<usize>) {
    const NODE: usize = 0xD00;
    let mut items = region_start(n);
    let mut releases = Vec::new();
    let base = r.below(n);
    for e in 0..episodes {
        let t = (base + e) % n;
        if e > 0 {
            items.push(Item::Ev(HookEvent::TaskDepReady {
                team: TEAM,
                tid: t,
                node: NODE + e,
            }));
            items.push(Item::Acc(t, access(900, false)));
        }
        items.push(Item::Acc(t, access(900, true)));
        releases.push(items.len());
        items.push(Item::Ev(HookEvent::TaskDepRelease {
            team: TEAM,
            tid: t,
            node: NODE + e + 1,
        }));
    }
    items.extend(region_end(n));
    (items, releases)
}

fn params(seed: u64) -> (SplitMix64, usize) {
    let mut r = SplitMix64::new(seed);
    let n = 2 + r.below(3); // 2..=4 members
    (r, n)
}

#[test]
fn well_formed_phased_streams_never_report_a_race() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let phases = 2 + r.below(3);
        let (items, _) = phased_program(&mut r, n, phases);
        let tr = run(&items);
        assert!(
            tr.race().is_none(),
            "seed {seed}: false positive on a barrier-separated stream: {}",
            tr.race().unwrap()
        );
    }
}

#[test]
fn well_formed_lock_streams_never_report_a_race() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, _) = lock_program(&mut r, n, episodes);
        let tr = run(&items);
        assert!(
            tr.race().is_none(),
            "seed {seed}: false positive on a lock-chained stream: {}",
            tr.race().unwrap()
        );
    }
}

#[test]
fn dropping_one_barrier_round_makes_the_cross_phase_pair_concurrent() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let phases = 2 + r.below(3);
        let (items, rounds) = phased_program(&mut r, n, phases);
        assert!(!rounds.is_empty());
        // Drop one whole barrier round: the two phases it separated now
        // write the same (re-owned) locations with no ordering edge.
        let (lo, hi) = rounds[r.below(rounds.len())];
        let mutated: Vec<Item> = items[..lo].iter().chain(&items[hi..]).cloned().collect();
        let tr = run(&mutated);
        let race = tr
            .race()
            .unwrap_or_else(|| panic!("seed {seed}: dropped barrier round left no race behind"));
        assert!(
            race.prior.tid != race.current.tid,
            "seed {seed}: a race needs two members: {race}"
        );
    }
}

#[test]
fn well_formed_nr_streams_never_report_a_race() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, _, _) = nr_program(&mut r, n, episodes);
        let tr = run(&items);
        assert!(
            tr.race().is_none(),
            "seed {seed}: false positive on an append/combine/sync-chained stream: {}",
            tr.race().unwrap()
        );
    }
}

#[test]
fn dropping_one_nr_combine_makes_the_replica_writes_concurrent() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, _, combines) = nr_program(&mut r, n, episodes);
        // Drop the acquire edge of one pass past the first: its replica
        // state write is no longer ordered after its predecessor's
        // (adjacent passes always run on different members).
        let victim = combines[1 + r.below(combines.len() - 1)];
        let mutated: Vec<Item> = items[..victim]
            .iter()
            .chain(&items[victim + 1..])
            .cloned()
            .collect();
        let tr = run(&mutated);
        let race = tr
            .race()
            .unwrap_or_else(|| panic!("seed {seed}: dropped NrCombine left no race behind"));
        // The combine was the acquire edge for both the episode's
        // payload read and its replica-state write; whichever access
        // comes first is the reported race.
        assert!(
            race.current.index == 600 || race.current.index >= 700,
            "seed {seed}: race must be on the replica state or the episode payload: {race}"
        );
        assert!(race.prior.tid != race.current.tid, "seed {seed}: {race}");
    }
}

#[test]
fn dropping_one_nr_append_unorders_the_op_payload_handoff() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, appends, _) = nr_program(&mut r, n, episodes);
        // Drop one publish edge: the combiner's read of that episode's
        // op payload is no longer ordered after the poster's write (the
        // poster is always a different member than the combiner).
        let victim = appends[r.below(appends.len())];
        let mutated: Vec<Item> = items[..victim]
            .iter()
            .chain(&items[victim + 1..])
            .cloned()
            .collect();
        let tr = run(&mutated);
        let race = tr
            .race()
            .unwrap_or_else(|| panic!("seed {seed}: dropped NrAppend left no race behind"));
        assert!(
            race.current.index >= 700,
            "seed {seed}: race must be on an op payload: {race}"
        );
        assert!(race.prior.tid != race.current.tid, "seed {seed}: {race}");
    }
}

#[test]
fn well_formed_dep_chains_never_report_a_race() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, _) = dep_program(&mut r, n, episodes);
        let tr = run(&items);
        assert!(
            tr.race().is_none(),
            "seed {seed}: false positive on a dependence-chained stream: {}",
            tr.race().unwrap()
        );
    }
}

#[test]
fn dropping_one_dep_release_makes_the_handoff_concurrent() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, releases) = dep_program(&mut r, n, episodes);
        // Drop one release short of the last (the last satisfies no
        // successor): the next task's handoff read and rewrite are no
        // longer ordered after this task's write (adjacent tasks always
        // run on different members) — exactly a missing `depend` clause.
        let victim = releases[r.below(releases.len() - 1)];
        let mutated: Vec<Item> = items[..victim]
            .iter()
            .chain(&items[victim + 1..])
            .cloned()
            .collect();
        let tr = run(&mutated);
        let race = tr
            .race()
            .unwrap_or_else(|| panic!("seed {seed}: dropped dependence release left no race"));
        assert_eq!(
            race.current.index, 900,
            "seed {seed}: race must be on the handoff location: {race}"
        );
        assert!(race.prior.tid != race.current.tid, "seed {seed}: {race}");
    }
}

#[test]
fn acquiring_the_wrong_dep_node_carries_no_edge() {
    // Per-node precision: redirecting one task's acquire to a node
    // nothing released toward must leave the handoff racy — the edge is
    // per dependence node, never a conservative whole-group join.
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (mut items, _) = dep_program(&mut r, n, episodes);
        let mut readies: Vec<usize> = Vec::new();
        for (i, it) in items.iter().enumerate() {
            if matches!(it, Item::Ev(HookEvent::TaskDepReady { .. })) {
                readies.push(i);
            }
        }
        assert!(!readies.is_empty());
        let victim = readies[r.below(readies.len())];
        if let Item::Ev(HookEvent::TaskDepReady { node, .. }) = &mut items[victim] {
            *node = 0xFFFF; // a node with no releases published toward it
        }
        let tr = run(&items);
        let race = tr
            .race()
            .unwrap_or_else(|| panic!("seed {seed}: wrong-node acquire left no race"));
        assert_eq!(race.current.index, 900, "seed {seed}: {race}");
        assert!(race.prior.tid != race.current.tid, "seed {seed}: {race}");
    }
}

#[test]
fn dropping_one_lock_acquire_makes_the_critical_pair_concurrent() {
    for seed in 0..60u64 {
        let (mut r, n) = params(seed);
        let episodes = 2 + r.below(5);
        let (items, acquires) = lock_program(&mut r, n, episodes);
        // Drop the acquire of one episode past the first: that episode's
        // counter write is no longer ordered after its predecessor's
        // (adjacent episodes always run on different members).
        let victim = acquires[1 + r.below(acquires.len() - 1)];
        let mutated: Vec<Item> = items[..victim]
            .iter()
            .chain(&items[victim + 1..])
            .cloned()
            .collect();
        let tr = run(&mutated);
        let race = tr
            .race()
            .unwrap_or_else(|| panic!("seed {seed}: dropped acquire left no race behind"));
        assert_eq!(
            race.current.index, 500,
            "seed {seed}: wrong location: {race}"
        );
        assert!(race.prior.tid != race.current.tid, "seed {seed}: {race}");
    }
}
