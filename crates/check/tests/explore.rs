//! Self-tests of the schedule-exploration harness: determinism of every
//! strategy, schedule-space coverage, oracle verdicts (differential,
//! deadlock, lost cancellation), and byte-for-byte replay of failures
//! from their printed seed or recorded trace.

use aomp::prelude::*;
use aomp_check as check;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A 3-thread program with enough decision points (two critical sections
/// and a barrier per member) that its schedule space dwarfs the seed
/// budget: random exploration should essentially never collide.
fn chatter() {
    let h = CriticalHandle::new();
    let sum = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(3), || {
        h.run(|| {
            sum.fetch_add(1, Ordering::SeqCst);
        });
        barrier();
        h.run(|| {
            sum.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(sum.load(Ordering::SeqCst), 6);
}

#[test]
fn random_exploration_is_deterministic_per_base_seed() {
    let digests = |base| -> Vec<u64> {
        check::explore_random(24, base, chatter)
            .runs
            .iter()
            .map(|r| r.trace.digest())
            .collect()
    };
    let a = digests(0xA0);
    let b = digests(0xA0);
    assert_eq!(a, b, "same base seed must reproduce identical traces");
    assert_ne!(a, digests(0xB1), "distinct base seeds must diverge");
}

#[test]
fn explores_a_thousand_distinct_schedules() {
    let report = check::explore_random(1100, 0x5CED_0001, chatter);
    report.assert_ok();
    assert_eq!(report.schedules(), 1100);
    assert!(
        report.distinct_schedules() >= 1000,
        "expected >= 1000 distinct interleavings, got {} of {}",
        report.distinct_schedules(),
        report.schedules()
    );
}

#[test]
fn dfs_enumerates_unique_schedules_deterministically() {
    let program = || {
        let h = CriticalHandle::new();
        let hits = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(2), || {
            h.run(|| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            barrier();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    };
    let a = check::explore_dfs(6000, 64, program);
    a.assert_ok();
    assert!(!a.truncated, "tiny program must be fully enumerated");
    assert!(a.schedules() > 1, "must branch at least once");
    assert_eq!(
        a.distinct_schedules(),
        a.schedules(),
        "DFS must never enumerate the same interleaving twice"
    );
    let b = check::explore_dfs(6000, 64, program);
    assert_eq!(
        a.digests(),
        b.digests(),
        "DFS frontier must be deterministic"
    );
}

#[test]
fn pct_exploration_is_deterministic_per_base_seed() {
    let digests = |base| -> Vec<u64> {
        check::explore_pct(16, base, 3, chatter)
            .runs
            .iter()
            .map(|r| r.trace.digest())
            .collect()
    };
    assert_eq!(digests(0xF00D), digests(0xF00D));
}

/// The deliberately broken program of the acceptance checklist: a
/// read-then-write "increment" split across two critical sections, so a
/// schedule that interleaves both reads before either write loses an
/// update. Sequential semantics say the counter ends at 2.
fn lost_update() {
    let h = CriticalHandle::new();
    let counter = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(2), || {
        let v = h.run(|| counter.load(Ordering::SeqCst));
        h.run(|| counter.store(v + 1, Ordering::SeqCst));
    });
    let got = counter.load(Ordering::SeqCst);
    assert_eq!(got, 2, "lost update: counter ended at {got}");
}

#[test]
fn injected_race_is_caught_and_replays_from_seed_and_trace() {
    let report = check::explore_random(64, 0xBAD_5EED, lost_update);
    let failing: Vec<&check::RunReport> = report.failures().collect();
    assert!(
        !failing.is_empty(),
        "64 random schedules must hit the lost-update interleaving"
    );
    assert!(
        failing.len() < report.schedules(),
        "the bug needs a specific interleaving; some schedules must pass"
    );
    let first = failing[0];
    let msg = first.failure.as_deref().unwrap();
    assert!(msg.contains("lost update"), "failure names the bug: {msg}");

    // Replay from the printed seed: same trace, same failure.
    let check::ScheduleId::Random { seed } = first.id else {
        panic!("random exploration must yield random schedule ids");
    };
    let by_seed = check::replay_random(seed, lost_update);
    assert_eq!(by_seed.trace.digest(), first.trace.digest());
    assert!(by_seed.failure.as_deref().unwrap().contains("lost update"));

    // Replay from the recorded trace: byte-for-byte the same execution.
    let by_trace = check::replay(&first.trace, lost_update);
    assert_eq!(by_trace.trace.digest(), first.trace.digest());
    assert!(by_trace.failure.as_deref().unwrap().contains("lost update"));
}

#[test]
fn differential_oracle_catches_the_race_via_golden_value() {
    let report = check::explore_differential(64, 0xD1FF, 2usize, || {
        let h = CriticalHandle::new();
        let counter = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(2), || {
            let v = h.run(|| counter.load(Ordering::SeqCst));
            h.run(|| counter.store(v + 1, Ordering::SeqCst));
        });
        counter.load(Ordering::SeqCst)
    });
    assert!(report.failures().count() > 0);
    assert!(report
        .failures()
        .next()
        .unwrap()
        .failure
        .as_deref()
        .unwrap()
        .contains("differential oracle"));
}

#[test]
fn mismatched_barriers_get_an_instant_deadlock_verdict() {
    // t1 waits at a second barrier round t0 never joins: a user bug that
    // wall-clock tests can only see as a hang (or via the watchdog). The
    // checker proves no runnable member remains and names the site —
    // deterministically, with no timeout in the loop.
    let report = check::explore_random(4, 0xDEAD, || {
        let r = region::try_parallel_with(RegionConfig::new().threads(2), || {
            barrier();
            if thread_id() == 1 {
                barrier();
            }
        });
        assert!(r.is_err(), "a deadlocked region must not report success");
    });
    assert_eq!(report.failures().count(), report.schedules());
    for run in report.failures() {
        let msg = run.failure.as_deref().unwrap();
        assert!(
            msg.contains("deterministic deadlock") && msg.contains("barrier"),
            "verdict names the deadlock and the site: {msg}"
        );
    }
}

#[test]
fn cancellation_is_never_lost_under_any_schedule() {
    check::explore_random(check::seeds_from_env(48), 0xCA7CE1, || {
        let r = region::try_parallel_with(RegionConfig::new().threads(2).cancellable(true), || {
            if thread_id() == 0 {
                assert!(cancel_team(), "team is cancellable");
            }
            barrier();
        });
        assert_eq!(
            r,
            Err(RegionError::Cancelled),
            "the cancel must reach every member in every interleaving"
        );
    })
    .assert_ok();
}

#[test]
fn clean_constructs_pass_every_invariant_oracle() {
    let single = Single::new();
    let master = Master::new();
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 2 });
    let report = check::explore_random(check::seeds_from_env(48), 0x0C1EA2, || {
        let total = AtomicUsize::new(0);
        let singles = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(3), || {
            let base = single.run(|| {
                singles.fetch_add(1, Ordering::SeqCst);
                10usize
            });
            barrier();
            let off = master.run(|| 1usize);
            for_c.execute(LoopRange::upto(0, 12), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    total.fetch_add(base + off, Ordering::SeqCst);
                    i += step;
                }
            });
        });
        assert_eq!(singles.load(Ordering::SeqCst), 1, "single ran once");
        assert_eq!(total.load(Ordering::SeqCst), 12 * 11);
    });
    report.assert_ok();
    assert!(report.distinct_schedules() > 1);
}

#[test]
fn report_digest_bookkeeping_is_consistent() {
    let report = check::explore_random(8, 0xB00C, chatter);
    assert_eq!(report.schedules(), 8);
    assert_eq!(report.digests().len(), report.distinct_schedules());
    assert_eq!(report.failures().count(), 0);
}
