//! Vector-clock happens-before race detection over the hook stream.
//!
//! A [`RaceTracker`] consumes the same serialised [`HookEvent`] stream
//! the controller logs, maintains one vector clock per team member, and
//! judges every tracked shared-memory access (reported through
//! [`aomp::check`]) against the happens-before relation those events
//! define:
//!
//! * **fork** — `RegionStart` seeds every member's clock from the
//!   master timeline (everything before the region happens-before
//!   everything in it); `MemberEnd`/`RegionEnd` join the members back.
//! * **join-all** — `BarrierExit`: a barrier round releases only after
//!   every live member arrived, so each exiter's clock becomes the join
//!   of all live members' entry clocks.
//! * **release/acquire** — `CriticalRelease` stores the holder's clock
//!   into the lock's clock; `CriticalAcquire` joins it into the
//!   acquirer. Same for `OrderedExit`/`OrderedEnter` along the ticket
//!   chain.
//! * **publisher→reader** — `BroadcastPublish` accumulates the
//!   publisher's clock into the broadcast site's clock;
//!   `BroadcastReceive` joins it into the receiver. Members that never
//!   waited on the broadcast get no edge.
//! * **task fork/join** — `TaskSpawn` accumulates the spawner's clock
//!   into a team task clock, `TaskJoin` joins it into the joiner. (This
//!   over-approximates joins — a join sees *all* earlier spawns, not
//!   just its own tasks — which can only add HB edges, i.e. miss a
//!   race, never invent one. Detached-thread task *bodies* run outside
//!   the team and are not tracked at all.)
//! * **dependence release/acquire** — `TaskDepRelease { node }` joins
//!   the releaser's clock into that *node's* clock (spawner publishing a
//!   created task, completing task satisfying one successor's
//!   dependence, or completion signalling the group's join sink);
//!   `TaskDepReady { node }` joins the node clock into the acquirer.
//!   Unlike the whole-group task clock above, these edges are *per
//!   dependence node*: two dependent tasks with no path between them get
//!   no edge, so a missing `depend` clause stays visible as a race.
//! * **no edge** — `ChunkHandout` deliberately creates no order: chunks
//!   of one work-sharing loop may interleave freely, which is exactly
//!   how overlapping-chunk races stay visible.
//!
//! Shadow state per location is FastTrack-style (Flanagan & Freund):
//! the last write as a single *epoch* `(tid, clock)` plus one read
//! epoch per thread since that write. The fast path is an epoch
//! comparison (same thread, same clock → already judged); only when the
//! last-access epoch does not trivially dominate does the tracker
//! consult clock components — never a full O(n) vector scan per access.
//!
//! Like the invariant oracles, the tracker goes *degraded* for the rest
//! of a region once cancellation or a mid-construct member exit is
//! observed: unwinding members skip release events, so judging accesses
//! after that point would report phantom races. Sync edges keep being
//! processed (they can only add order), so tracking resumes soundly in
//! the next region.

use aomp::check::AccessEvent;
use aomp::error::WaitSite;
use aomp::hook::HookEvent;
use std::collections::HashMap;
use std::fmt;

/// A grow-on-demand vector clock, indexed by member id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    c: Vec<u32>,
}

impl VClock {
    /// Component `i` (0 when never bumped).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.c.get(i).copied().unwrap_or(0)
    }

    /// Advance component `i`.
    #[inline]
    pub fn bump(&mut self, i: usize) {
        if self.c.len() <= i {
            self.c.resize(i + 1, 0);
        }
        self.c[i] += 1;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (i, &v) in other.c.iter().enumerate() {
            if self.c[i] < v {
                self.c[i] = v;
            }
        }
    }
}

/// One side of a reported race: which tracked location, by whom, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// Declared name of the tracked array/cell.
    pub name: &'static str,
    /// Element index within it.
    pub index: usize,
    /// Member id that performed the access.
    pub tid: usize,
    /// Whether the access was a write.
    pub is_write: bool,
    /// Number of hook events the tracker had consumed when the access
    /// happened — locates the access between decision points of the
    /// schedule's replayable trace.
    pub event_pos: usize,
}

impl fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of `{}[{}]` by t{} (after event #{})",
            if self.is_write { "write" } else { "read" },
            self.name,
            self.index,
            self.tid,
            self.event_pos
        )
    }
}

/// The first conflicting access pair found on a schedule: same location,
/// at least one write, vector clocks incomparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The earlier access (still in the shadow state when caught).
    pub prior: RaceAccess,
    /// The access that completed the conflicting pair.
    pub current: RaceAccess,
    /// Address of the element both touched.
    pub addr: usize,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race: {} and {} are unordered by happens-before (addr {:#x})",
            self.prior, self.current, self.addr
        )
    }
}

/// Last access epoch for one location and thread: `clock` is the value
/// of the accessor's own clock component at access time.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    tid: usize,
    clock: u32,
    name: &'static str,
    index: usize,
    pos: usize,
    is_write: bool,
}

impl Epoch {
    fn site(&self) -> RaceAccess {
        RaceAccess {
            name: self.name,
            index: self.index,
            tid: self.tid,
            is_write: self.is_write,
            event_pos: self.pos,
        }
    }
}

/// FastTrack-style shadow word: the last write epoch plus the read
/// epochs (one per thread) since that write.
#[derive(Debug, Default)]
struct Shadow {
    write: Option<Epoch>,
    reads: Vec<Epoch>,
}

/// Happens-before tracker for one explored schedule. Feed it the hook
/// events in serialised order via [`on_event`](Self::on_event) and
/// every tracked access via [`on_access`](Self::on_access); the first
/// conflicting pair is kept in [`race`](Self::race).
#[derive(Debug, Default)]
pub struct RaceTracker {
    /// Team size of the current region (0 outside any region).
    n: usize,
    in_region: bool,
    /// Per-member clocks, indexed by tid.
    clocks: Vec<VClock>,
    /// The master timeline between regions; every region forks from and
    /// joins back into it, ordering accesses across regions.
    global: VClock,
    /// Release clocks per critical lock id (process-scoped, like locks).
    locks: HashMap<usize, VClock>,
    /// Accumulated publisher clocks per broadcast site kind.
    bcasts: HashMap<u8, VClock>,
    /// Release clock of the last completed ordered turn.
    ordered: VClock,
    /// Accumulated spawner clocks for task joins.
    tasks: VClock,
    /// Per-dependence-node release clocks (`TaskDepRelease` publishes,
    /// `TaskDepReady` acquires). Process-scoped ids, like locks.
    dep_nodes: HashMap<usize, VClock>,
    /// Accumulated appender clocks per replicated structure (`nr` id):
    /// everything published toward the structure's operation log. Like
    /// `tasks`, this over-approximates (a combine joins *all* earlier
    /// appends, not only those at positions below its batch end) — extra
    /// edges can hide a race but never invent one.
    nr_logs: HashMap<usize, VClock>,
    /// Release clocks per `(nr id, replica)`: the joined clocks of every
    /// combiner that published a batch into that replica.
    nr_replicas: HashMap<(usize, usize), VClock>,
    /// In-progress barrier round: the join of all live members' entry
    /// clocks, and how many exits are still owed it.
    round: Option<(VClock, usize)>,
    done: Vec<bool>,
    degraded: bool,
    shadow: HashMap<usize, Shadow>,
    race: Option<RaceReport>,
    /// Hook events consumed; stamps accesses for reports.
    events: usize,
}

fn bcast_key(site: WaitSite) -> u8 {
    match site {
        WaitSite::MasterBroadcast => 0,
        _ => 1, // SingleBroadcast (and anything future) share a slot
    }
}

impl RaceTracker {
    /// Fresh tracker (one per explored schedule).
    pub fn new() -> Self {
        Self::default()
    }

    /// The first conflicting pair found, if any.
    pub fn race(&self) -> Option<&RaceReport> {
        self.race.as_ref()
    }

    /// Consume the next serialised hook event and update the HB state.
    pub fn on_event(&mut self, ev: &HookEvent) {
        self.events += 1;
        match *ev {
            HookEvent::RegionStart { size, .. } => {
                self.n = size;
                self.in_region = true;
                self.degraded = false;
                self.round = None;
                self.done = vec![false; size];
                self.clocks = (0..size)
                    .map(|t| {
                        let mut c = self.global.clone();
                        c.bump(t);
                        c
                    })
                    .collect();
                return;
            }
            HookEvent::RegionEnd { .. } => {
                self.in_region = false;
                return;
            }
            HookEvent::CancelRequested { .. } => {
                self.degraded = true;
                return;
            }
            _ => {}
        }
        let Some(tid) = ev.tid() else { return };
        if !self.in_region || tid >= self.n {
            return;
        }
        match *ev {
            HookEvent::MemberEnd { .. } => {
                if self.round.is_some() {
                    // A member left mid-barrier-round: the region was
                    // interrupted; stop judging its accesses.
                    self.degraded = true;
                }
                let c = self.clocks[tid].clone();
                self.global.join(&c);
                self.done[tid] = true;
                return;
            }
            HookEvent::BarrierExit { .. } => {
                let (joined, remaining) = self.round.take().unwrap_or_else(|| {
                    // First exit of a round: the barrier released, so
                    // every live member has arrived and is parked — their
                    // clocks *are* the round's entry clocks.
                    let mut j = VClock::default();
                    let mut live = 0;
                    for t in 0..self.n {
                        if !self.done[t] {
                            j.join(&self.clocks[t]);
                            live += 1;
                        }
                    }
                    (j, live)
                });
                self.clocks[tid] = joined.clone();
                if remaining > 1 {
                    self.round = Some((joined, remaining - 1));
                }
            }
            HookEvent::CriticalAcquire { lock, .. } => {
                if let Some(l) = self.locks.get(&lock) {
                    self.clocks[tid].join(l);
                }
            }
            HookEvent::CriticalRelease { lock, .. } => {
                self.locks.insert(lock, self.clocks[tid].clone());
            }
            HookEvent::OrderedEnter { .. } => {
                let o = self.ordered.clone();
                self.clocks[tid].join(&o);
            }
            HookEvent::OrderedExit { .. } => {
                self.ordered = self.clocks[tid].clone();
            }
            HookEvent::BroadcastPublish { site, .. } => {
                // Accumulate rather than overwrite: a later publish to
                // the same site kind must not erase the edge a receiver
                // of an earlier publish is owed.
                let c = self.clocks[tid].clone();
                self.bcasts.entry(bcast_key(site)).or_default().join(&c);
            }
            HookEvent::BroadcastReceive { site, .. } => {
                if let Some(b) = self.bcasts.get(&bcast_key(site)) {
                    let b = b.clone();
                    self.clocks[tid].join(&b);
                }
            }
            HookEvent::TaskSpawn { .. } => {
                let c = self.clocks[tid].clone();
                self.tasks.join(&c);
            }
            HookEvent::TaskJoin { .. } => {
                let t = self.tasks.clone();
                self.clocks[tid].join(&t);
            }
            HookEvent::TaskDepRelease { node, .. } => {
                // Accumulate: one node collects its creation edge plus a
                // release per satisfied dependence, and a group's sink
                // collects every completion.
                let c = self.clocks[tid].clone();
                self.dep_nodes.entry(node).or_default().join(&c);
            }
            HookEvent::TaskDepReady { node, .. } => {
                if let Some(d) = self.dep_nodes.get(&node) {
                    let d = d.clone();
                    self.clocks[tid].join(&d);
                }
            }
            HookEvent::NrAppend { nr, .. } => {
                // Release: the publisher's clock flows into the log.
                let c = self.clocks[tid].clone();
                self.nr_logs.entry(nr).or_default().join(&c);
            }
            HookEvent::NrCombine { nr, replica, .. } => {
                // Acquire: before applying the batch the combiner
                // observes every publish into the log *and* everything
                // earlier combiners already applied to this replica (the
                // replica data itself carries those effects).
                if let Some(l) = self.nr_logs.get(&nr) {
                    let l = l.clone();
                    self.clocks[tid].join(&l);
                }
                if let Some(r) = self.nr_replicas.get(&(nr, replica)) {
                    let r = r.clone();
                    self.clocks[tid].join(&r);
                }
            }
            HookEvent::NrSync { nr, replica, .. } => {
                // Symmetric merge: a combiner releases its applied batch
                // into the replica clock; a reader/writer returning from
                // a sync acquires every batch published so far. Merging
                // both ways is conservative (adds edges, never removes),
                // matching the task-join treatment above.
                let r = self.nr_replicas.entry((nr, replica)).or_default();
                r.join(&self.clocks[tid]);
                let r = r.clone();
                self.clocks[tid].join(&r);
            }
            // ChunkHandout / MemberStart / CancellationPoint /
            // WaitRegister: no HB edge, just a tick below.
            _ => {}
        }
        // Every member-scoped event advances the member's own component,
        // so epochs recorded before a release/exit never equal epochs
        // after it — the same-epoch fast path stays exact.
        self.clocks[tid].bump(tid);
    }

    /// Judge one tracked access by member `tid` against the HB state.
    pub fn on_access(&mut self, tid: usize, ev: &AccessEvent) {
        if self.race.is_some() || self.degraded || !self.in_region || tid >= self.n {
            return;
        }
        let clock = &self.clocks[tid];
        let me = Epoch {
            tid,
            clock: clock.get(tid),
            name: ev.name,
            index: ev.index,
            pos: self.events,
            is_write: ev.is_write,
        };
        let shadow = self.shadow.entry(ev.addr).or_default();
        let conflict = if ev.is_write {
            // Write-same-epoch fast path: nothing can have interleaved.
            if let Some(w) = shadow.write {
                if w.tid == tid && w.clock == me.clock {
                    return;
                }
            }
            let lost_write = shadow
                .write
                .filter(|w| w.tid != tid && w.clock > clock.get(w.tid));
            let lost_read = shadow
                .reads
                .iter()
                .find(|r| r.tid != tid && r.clock > clock.get(r.tid))
                .copied();
            let c = lost_write.or(lost_read);
            if c.is_none() {
                shadow.write = Some(me);
                shadow.reads.clear();
            }
            c
        } else {
            // Read-same-epoch fast path.
            if let Some(r) = shadow.reads.iter_mut().find(|r| r.tid == tid) {
                if r.clock == me.clock {
                    return;
                }
                let lost = shadow
                    .write
                    .filter(|w| w.tid != tid && w.clock > clock.get(w.tid));
                if lost.is_none() {
                    if let Some(r) = shadow.reads.iter_mut().find(|r| r.tid == tid) {
                        *r = me;
                    }
                }
                lost
            } else {
                let lost = shadow
                    .write
                    .filter(|w| w.tid != tid && w.clock > clock.get(w.tid));
                if lost.is_none() {
                    shadow.reads.push(me);
                }
                lost
            }
        };
        if let Some(prior) = conflict {
            self.race = Some(RaceReport {
                prior: prior.site(),
                current: me.site(),
                addr: ev.addr,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEAM: usize = 1;

    fn region(n: usize) -> HookEvent {
        HookEvent::RegionStart {
            team: TEAM,
            size: n,
            level: 1,
        }
    }
    fn member(tid: usize) -> HookEvent {
        HookEvent::MemberStart { team: TEAM, tid }
    }
    fn barrier_exit(tid: usize) -> HookEvent {
        HookEvent::BarrierExit {
            team: TEAM,
            tid,
            leader: tid == 0,
        }
    }
    fn acq(tid: usize, lock: usize) -> HookEvent {
        HookEvent::CriticalAcquire {
            team: TEAM,
            tid,
            lock,
        }
    }
    fn rel(tid: usize, lock: usize) -> HookEvent {
        HookEvent::CriticalRelease {
            team: TEAM,
            tid,
            lock,
        }
    }
    fn access(is_write: bool, index: usize) -> AccessEvent {
        AccessEvent {
            addr: 0x1000 + index * 8,
            name: "arr",
            index,
            is_write,
        }
    }

    fn start(tracker: &mut RaceTracker, n: usize) {
        tracker.on_event(&region(n));
        for t in 0..n {
            tracker.on_event(&member(t));
        }
    }

    #[test]
    fn unsynchronized_write_read_is_a_race() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 3));
        tr.on_access(1, &access(false, 3));
        let race = tr.race().expect("conflicting pair must be reported");
        assert!(race.prior.is_write && !race.current.is_write);
        assert_eq!((race.prior.tid, race.current.tid), (0, 1));
        assert_eq!(race.prior.index, 3);
        let text = race.to_string();
        assert!(text.contains("write of `arr[3]` by t0"), "{text}");
        assert!(text.contains("read of `arr[3]` by t1"), "{text}");
    }

    #[test]
    fn barrier_orders_the_phases() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 0));
        tr.on_event(&barrier_exit(1));
        tr.on_event(&barrier_exit(0));
        tr.on_access(1, &access(false, 0));
        assert!(tr.race().is_none(), "{:?}", tr.race());
        // And the write-write pair across the barrier is ordered too.
        tr.on_access(1, &access(true, 0));
        assert!(tr.race().is_none());
    }

    #[test]
    fn reads_alone_never_race() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 3);
        for t in 0..3 {
            tr.on_access(t, &access(false, 7));
            tr.on_access(t, &access(false, 7)); // same-epoch fast path
        }
        assert!(tr.race().is_none());
    }

    #[test]
    fn critical_on_both_sides_orders_accesses() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_event(&acq(0, 0xA));
        tr.on_access(0, &access(true, 1));
        tr.on_event(&rel(0, 0xA));
        tr.on_event(&acq(1, 0xA));
        tr.on_access(1, &access(true, 1));
        tr.on_event(&rel(1, 0xA));
        assert!(tr.race().is_none(), "{:?}", tr.race());
    }

    #[test]
    fn critical_on_writer_only_is_a_race() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_event(&acq(0, 0xA));
        tr.on_access(0, &access(true, 1));
        tr.on_event(&rel(0, 0xA));
        tr.on_access(1, &access(false, 1)); // no acquire: no edge
        assert!(tr.race().is_some());
    }

    #[test]
    fn broadcast_orders_publisher_and_receiver_only() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 3);
        tr.on_access(0, &access(true, 2));
        tr.on_event(&HookEvent::BroadcastPublish {
            team: TEAM,
            tid: 0,
            site: WaitSite::MasterBroadcast,
        });
        tr.on_event(&HookEvent::BroadcastReceive {
            team: TEAM,
            tid: 1,
            site: WaitSite::MasterBroadcast,
        });
        tr.on_access(1, &access(false, 2));
        assert!(tr.race().is_none(), "receiver is ordered after publish");
        tr.on_access(2, &access(false, 2));
        assert!(tr.race().is_some(), "non-receiver got no edge");
    }

    #[test]
    fn task_spawn_join_orders_spawner_and_joiner() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 5));
        tr.on_event(&HookEvent::TaskSpawn { team: TEAM, tid: 0 });
        tr.on_event(&HookEvent::TaskJoin {
            team: TEAM,
            tid: 1,
            site: WaitSite::TaskWait,
        });
        tr.on_access(1, &access(false, 5));
        assert!(tr.race().is_none());
    }

    #[test]
    fn dep_release_acquire_orders_the_pair() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 5));
        tr.on_event(&HookEvent::TaskDepRelease {
            team: TEAM,
            tid: 0,
            node: 42,
        });
        tr.on_event(&HookEvent::TaskDepReady {
            team: TEAM,
            tid: 1,
            node: 42,
        });
        tr.on_access(1, &access(false, 5));
        assert!(tr.race().is_none(), "{:?}", tr.race());
    }

    #[test]
    fn dep_edges_are_per_node_not_whole_group() {
        // A release toward node 7 orders nothing for a task acquiring
        // node 8 — unlike the conservative TaskSpawn/TaskJoin edge.
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 5));
        tr.on_event(&HookEvent::TaskDepRelease {
            team: TEAM,
            tid: 0,
            node: 7,
        });
        tr.on_event(&HookEvent::TaskDepReady {
            team: TEAM,
            tid: 1,
            node: 8,
        });
        tr.on_access(1, &access(false, 5));
        assert!(tr.race().is_some(), "no path between the nodes");
    }

    #[test]
    fn dep_releases_accumulate_per_node() {
        // Two predecessors release toward the same successor node; the
        // successor must be ordered after *both*.
        let mut tr = RaceTracker::new();
        start(&mut tr, 3);
        tr.on_access(0, &access(true, 1));
        tr.on_event(&HookEvent::TaskDepRelease {
            team: TEAM,
            tid: 0,
            node: 9,
        });
        tr.on_access(1, &access(true, 2));
        tr.on_event(&HookEvent::TaskDepRelease {
            team: TEAM,
            tid: 1,
            node: 9,
        });
        tr.on_event(&HookEvent::TaskDepReady {
            team: TEAM,
            tid: 2,
            node: 9,
        });
        tr.on_access(2, &access(false, 1));
        tr.on_access(2, &access(false, 2));
        assert!(tr.race().is_none(), "{:?}", tr.race());
    }

    #[test]
    fn chunk_handouts_create_no_order() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_event(&HookEvent::ChunkHandout {
            team: TEAM,
            tid: 0,
            kind: "dynamic",
            lo: 0,
            hi: 1,
        });
        tr.on_access(0, &access(true, 0));
        tr.on_event(&HookEvent::ChunkHandout {
            team: TEAM,
            tid: 1,
            kind: "dynamic",
            lo: 1,
            hi: 2,
        });
        tr.on_access(1, &access(true, 0)); // overlapping chunk: same element
        assert!(tr.race().is_some());
    }

    #[test]
    fn regions_are_ordered_through_the_master_timeline() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(1, &access(true, 4));
        for t in 0..2 {
            tr.on_event(&HookEvent::MemberEnd { team: TEAM, tid: t });
        }
        tr.on_event(&HookEvent::RegionEnd { team: TEAM });
        start(&mut tr, 2);
        tr.on_access(0, &access(false, 4));
        tr.on_access(0, &access(true, 4));
        assert!(tr.race().is_none(), "{:?}", tr.race());
    }

    #[test]
    fn degraded_region_reports_nothing_but_next_region_recovers() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 6));
        tr.on_event(&HookEvent::CancelRequested { team: TEAM, tid: 1 });
        tr.on_access(1, &access(true, 6)); // would be a race; not judged
        assert!(tr.race().is_none());
        for t in 0..2 {
            tr.on_event(&HookEvent::MemberEnd { team: TEAM, tid: t });
        }
        tr.on_event(&HookEvent::RegionEnd { team: TEAM });
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 6));
        tr.on_access(1, &access(false, 6));
        assert!(tr.race().is_some(), "fresh region is judged again");
    }

    #[test]
    fn first_race_only_is_kept() {
        let mut tr = RaceTracker::new();
        start(&mut tr, 2);
        tr.on_access(0, &access(true, 0));
        tr.on_access(1, &access(true, 0));
        let first = tr.race().cloned().unwrap();
        tr.on_access(1, &access(true, 1));
        tr.on_access(0, &access(true, 1));
        assert_eq!(tr.race().cloned().unwrap(), first);
    }
}
