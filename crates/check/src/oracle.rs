//! Invariant oracles over a schedule's event log.
//!
//! These run after every *clean* schedule (no panic, no verdict) and
//! assert runtime invariants that must hold in any legal interleaving:
//!
//! * **Barrier lockstep** — barrier rounds are generation-monotonic: a
//!   round's release requires every member to have arrived, so all `n`
//!   exits of round `k` (distinct members, exactly one leader) appear in
//!   the serialised log before any exit of round `k+1`.
//! * **Master broadcast source** — `@Master` broadcast values are only
//!   ever published by member 0.
//! * **Critical alternation** — acquire/release events of one lock
//!   alternate correctly: a lock acquired while held is a re-entrant
//!   acquire by the same member, and releases come from the holder.
//!
//! The oracles are deliberately tolerant of *interrupted* regions: after
//! a cancellation request or an early member exit, partial barrier rounds
//! and unmatched acquires are legal (members unwound mid-construct), so
//! checking stops for that region.

use aomp::error::WaitSite;
use aomp::hook::HookEvent;
use aomp::obs::{Counter, Snapshot};
use std::collections::HashMap;

/// Check every built-in invariant over one schedule's event log.
pub fn check_invariants(log: &[HookEvent]) -> Result<(), String> {
    barrier_lockstep(log)?;
    master_publishes_from_master(log)?;
    critical_alternation(log)?;
    Ok(())
}

/// Tenant-isolation oracle over per-runtime counter scopes.
///
/// Multi-tenant serving (`aomp-serve`) pins every tenant to its own
/// [`aomp::Runtime`], whose counter scope attributes only that tenant's
/// activity. Isolation then has a checkable shape: across a window in
/// which a *neighbour* tenant was cancelled, panicked or overloaded, the
/// victim tenant's scope must have moved by exactly its own workload —
/// `expect` names the counters that must have advanced by an exact
/// amount, `zero` the failure/shedding counters that must not have moved
/// at all. Feed it `before`/`after` from
/// [`aomp::Runtime::metrics_snapshot`]; combine with schedule
/// exploration to assert it under chosen interleavings.
pub fn check_tenant_isolation(
    before: &Snapshot,
    after: &Snapshot,
    expect: &[(Counter, u64)],
    zero: &[Counter],
) -> Result<(), String> {
    let delta = after.since(before);
    for &(c, want) in expect {
        let got = delta.counter(c);
        if got != want {
            return Err(format!(
                "tenant isolation violated: counter {} moved by {got}, expected exactly {want}",
                c.name()
            ));
        }
    }
    for &c in zero {
        let got = delta.counter(c);
        if got != 0 {
            return Err(format!(
                "tenant isolation violated: counter {} moved by {got} in a window where \
                 it must stay untouched",
                c.name()
            ));
        }
    }
    Ok(())
}

/// Barrier generation monotonicity (see module docs).
fn barrier_lockstep(log: &[HookEvent]) -> Result<(), String> {
    let mut n = 0usize;
    let mut round: Vec<(usize, bool)> = Vec::new();
    let mut rounds_done = 0u64;
    let mut degraded = false;
    for ev in log {
        match *ev {
            HookEvent::RegionStart { size, .. } => {
                n = size;
                round.clear();
                rounds_done = 0;
                degraded = false;
            }
            HookEvent::CancelRequested { .. } => degraded = true,
            HookEvent::MemberEnd { .. } if !round.is_empty() => {
                // A member left mid-round: the region was interrupted
                // (poison/cancel); stop judging its barrier rounds.
                degraded = true;
            }
            HookEvent::BarrierExit { tid, leader, .. } if !degraded && n > 0 => {
                if round.iter().any(|&(t, _)| t == tid) {
                    return Err(format!(
                        "barrier lockstep violated: t{tid} exited round {rounds_done} \
                         twice before the round completed"
                    ));
                }
                round.push((tid, leader));
                if round.len() == n {
                    let leaders = round.iter().filter(|&&(_, l)| l).count();
                    if leaders != 1 {
                        return Err(format!(
                            "barrier round {rounds_done} completed with {leaders} \
                             leaders (expected exactly 1): {round:?}"
                        ));
                    }
                    round.clear();
                    rounds_done += 1;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// `@Master` broadcasts must be published by member 0.
fn master_publishes_from_master(log: &[HookEvent]) -> Result<(), String> {
    for ev in log {
        if let HookEvent::BroadcastPublish { tid, site, .. } = *ev {
            if site == WaitSite::MasterBroadcast && tid != 0 {
                return Err(format!("master broadcast published by t{tid} (must be t0)"));
            }
        }
    }
    Ok(())
}

/// Mutual-exclusion sanity over critical acquire/release events.
fn critical_alternation(log: &[HookEvent]) -> Result<(), String> {
    // lock id -> (holder tid, re-entrancy depth)
    let mut held: HashMap<usize, (usize, usize)> = HashMap::new();
    let mut degraded = false;
    for ev in log {
        match *ev {
            HookEvent::RegionStart { .. } => {
                held.clear();
                degraded = false;
            }
            HookEvent::CancelRequested { .. } => degraded = true,
            HookEvent::MemberEnd { .. } if !held.is_empty() => {
                // An unwinding member skips its release events.
                degraded = true;
            }
            HookEvent::CriticalAcquire { tid, lock, .. } if !degraded => {
                match held.get_mut(&lock) {
                    Some((holder, depth)) => {
                        if *holder != tid {
                            return Err(format!(
                                "critical violated: t{tid} acquired lock {lock:#x} \
                                 while t{holder} holds it"
                            ));
                        }
                        *depth += 1; // re-entrant
                    }
                    None => {
                        held.insert(lock, (tid, 1));
                    }
                }
            }
            HookEvent::CriticalRelease { tid, lock, .. } if !degraded => {
                match held.get_mut(&lock) {
                    Some((holder, depth)) if *holder == tid => {
                        *depth -= 1;
                        if *depth == 0 {
                            held.remove(&lock);
                        }
                    }
                    Some((holder, _)) => {
                        return Err(format!(
                            "critical violated: t{tid} released lock {lock:#x} \
                             held by t{holder}"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "critical violated: t{tid} released lock {lock:#x} \
                             that is not held"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(n: usize) -> HookEvent {
        HookEvent::RegionStart {
            team: 1,
            size: n,
            level: 1,
        }
    }

    fn exit(tid: usize, leader: bool) -> HookEvent {
        HookEvent::BarrierExit {
            team: 1,
            tid,
            leader,
        }
    }

    #[test]
    fn clean_rounds_pass() {
        let log = vec![
            region(2),
            exit(0, false),
            exit(1, true),
            exit(1, false),
            exit(0, true),
        ];
        assert!(barrier_lockstep(&log).is_ok());
    }

    #[test]
    fn duplicate_member_in_round_fails() {
        let log = vec![region(2), exit(0, false), exit(0, true)];
        assert!(barrier_lockstep(&log).is_err());
    }

    #[test]
    fn two_leaders_fail() {
        let log = vec![region(2), exit(0, true), exit(1, true)];
        assert!(barrier_lockstep(&log).is_err());
    }

    #[test]
    fn cancelled_region_tolerates_partial_round() {
        let log = vec![
            region(2),
            HookEvent::CancelRequested { team: 1, tid: 0 },
            exit(0, true),
        ];
        assert!(barrier_lockstep(&log).is_ok());
    }

    #[test]
    fn master_publish_from_worker_fails() {
        let log = vec![HookEvent::BroadcastPublish {
            team: 1,
            tid: 2,
            site: WaitSite::MasterBroadcast,
        }];
        assert!(master_publishes_from_master(&log).is_err());
    }

    #[test]
    fn single_publish_from_any_tid_is_fine() {
        let log = vec![HookEvent::BroadcastPublish {
            team: 1,
            tid: 2,
            site: WaitSite::SingleBroadcast,
        }];
        assert!(check_invariants(&log).is_ok());
    }

    #[test]
    fn tenant_isolation_oracle_judges_deltas() {
        // Exercised against a private runtime's scope: bumps attribute
        // to that runtime only, so this test is hermetic even though
        // other tests run concurrently in this binary.
        let rt = aomp::Runtime::builder().threads(1).build();
        let before = rt.metrics_snapshot();
        rt.record_counter(Counter::ServeCompleted);
        rt.record_counter(Counter::ServeCompleted);
        let after = rt.metrics_snapshot();
        check_tenant_isolation(
            &before,
            &after,
            &[(Counter::ServeCompleted, 2)],
            &[Counter::ServeShed, Counter::ServeFaulted],
        )
        .expect("clean window must pass");
        assert!(
            check_tenant_isolation(&before, &after, &[(Counter::ServeCompleted, 1)], &[]).is_err(),
            "wrong exact count must fail"
        );
        assert!(
            check_tenant_isolation(&before, &after, &[], &[Counter::ServeCompleted]).is_err(),
            "non-zero counter in the zero set must fail"
        );
    }

    #[test]
    fn critical_reentrancy_and_alternation() {
        let acq = |tid, lock| HookEvent::CriticalAcquire { team: 1, tid, lock };
        let rel = |tid, lock| HookEvent::CriticalRelease { team: 1, tid, lock };
        let ok = vec![
            region(2),
            acq(0, 8),
            acq(0, 8),
            rel(0, 8),
            rel(0, 8),
            acq(1, 8),
            rel(1, 8),
        ];
        assert!(critical_alternation(&ok).is_ok());
        let bad = vec![region(2), acq(0, 8), acq(1, 8)];
        assert!(critical_alternation(&bad).is_err());
    }
}
