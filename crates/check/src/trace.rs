//! Replayable schedule traces.
//!
//! A trace is the sequence of decisions the controller made while running
//! one schedule: at each decision point, which member (of the eligible
//! set) was granted the token. Because the controller serialises the team
//! — exactly one member runs between decision points — the trace plus the
//! program determines the execution, so a failing schedule replays
//! byte-for-byte from its trace (or from the seed that generated it).

use crate::rng::mix64;
use std::fmt;

/// One scheduling decision: the eligible members at that point and which
/// one was chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Index into `eligible` that was chosen.
    pub chosen_idx: usize,
    /// Member ids that were runnable at this point (sorted by tid).
    pub eligible: Vec<usize>,
}

impl Decision {
    /// The member id that was granted the token.
    pub fn chosen_tid(&self) -> usize {
        self.eligible[self.chosen_idx]
    }
}

/// The full decision sequence of one explored schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Decisions in the order they were made.
    pub decisions: Vec<Decision>,
}

impl Trace {
    /// Order-sensitive digest of the decision sequence. Two schedules
    /// with equal digests took the same path through every decision
    /// point; distinct digests certify distinct interleavings.
    pub fn digest(&self) -> u64 {
        let mut h = 0xA017_5EEDu64;
        for d in &self.decisions {
            h = mix64(h ^ d.chosen_tid() as u64);
            h = mix64(h ^ (d.eligible.len() as u64) << 32);
            for &t in &d.eligible {
                h = mix64(h ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15));
            }
        }
        h
    }

    /// Number of decision points.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when the schedule never reached a decision point (e.g. a
    /// single-member team).
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 200;
        writeln!(
            f,
            "trace: {} decisions, digest {:#018x}",
            self.decisions.len(),
            self.digest()
        )?;
        for (i, d) in self.decisions.iter().take(MAX_SHOWN).enumerate() {
            writeln!(
                f,
                "  step {i:4}: ran t{} of {:?}",
                d.chosen_tid(),
                d.eligible
            )?;
        }
        if self.decisions.len() > MAX_SHOWN {
            writeln!(
                f,
                "  ... {} more decisions elided",
                self.decisions.len() - MAX_SHOWN
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(chosen_idx: usize, eligible: &[usize]) -> Decision {
        Decision {
            chosen_idx,
            eligible: eligible.to_vec(),
        }
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = Trace {
            decisions: vec![d(0, &[0, 1]), d(1, &[0, 1])],
        };
        let b = Trace {
            decisions: vec![d(1, &[0, 1]), d(0, &[0, 1])],
        };
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn equal_traces_equal_digests() {
        let a = Trace {
            decisions: vec![d(0, &[0, 2]), d(0, &[1])],
        };
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn display_shows_steps() {
        let t = Trace {
            decisions: vec![d(1, &[0, 3])],
        };
        let s = t.to_string();
        assert!(s.contains("ran t3"));
        assert!(s.contains("1 decisions"));
    }
}
