//! Deterministic pseudo-random source for schedule choice.
//!
//! SplitMix64 (Steele/Lea/Flood, "Fast splittable pseudorandom number
//! generators"): tiny state, full 64-bit period over the counter, and —
//! crucial for the checker — the `k`-th output is a pure function of the
//! seed, so replaying a seed reproduces a schedule byte-for-byte.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Every distinct seed yields an independent stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`). Modulo bias is
    /// irrelevant here: bounds are tiny (team sizes) against 2^64.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// One-shot mix of a word — used to derive per-thread priorities and to
/// fold trace digests without carrying generator state.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
    }
}
