//! # aomp-check — deterministic schedule exploration for the aomp runtime
//!
//! A loom/shuttle-style concurrency checker, self-contained (no external
//! dependencies, consistent with the workspace `shims/` policy). It drives
//! a program built on [`aomp`] through *chosen* thread interleavings
//! instead of whatever the OS scheduler happens to produce, so rare
//! orderings — a cancel landing between a chunk handout and a barrier, two
//! members racing a critical section — are tested by construction.
//!
//! ## How it works
//!
//! The runtime reports every scheduling decision site (barrier entry/exit,
//! critical acquire/release, chunk handouts, broadcasts, ordered turns,
//! task spawn/join, cancellation points, wait-site registration) through
//! the [`aomp::hook`] layer. While an exploration runs, this crate
//! registers a controller hook that serialises the team: exactly one
//! member runs between decision points, and at each point a pluggable
//! [`strategy::Chooser`] picks who goes next. The resulting decision
//! sequence is a replayable [`Trace`]: the same seed (or the recorded
//! trace itself) reproduces the execution byte-for-byte.
//!
//! Three strategies are built in:
//!
//! * **seeded random** ([`explore_random`]) — uniform choice per decision;
//!   the seed *is* the schedule,
//! * **bounded-exhaustive DFS** ([`explore_dfs`]) — enumerate every
//!   interleaving whose divergence from first-runnable order happens
//!   within a decision-depth cap,
//! * **PCT** ([`explore_pct`]) — randomised priorities with `d` priority
//!   change points (Burckhardt et al., ASPLOS '10).
//!
//! Each exploration builds a private [`aomp::Runtime`] and runs every
//! schedule with it entered, so checker-driven regions and tasks share
//! nothing (hot teams, executor workers, counters) with the process
//! default runtime; the runtime is dropped — its threads joined — when
//! the exploration returns.
//!
//! After every clean schedule the invariant oracles in [`oracle`] run over
//! the event log (barrier lockstep, master-broadcast source, critical
//! alternation); [`explore_differential`] additionally checks the
//! program's result against its sequential golden value — the paper's
//! "same results as the sequential version" claim, per schedule.
//!
//! ## Writing a checked test
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let report = aomp_check::explore_random(16, 0xA0_5EED, || {
//!     let hits = AtomicUsize::new(0);
//!     aomp::region::parallel_with(aomp::region::RegionConfig::new().threads(2), || {
//!         hits.fetch_add(1, Ordering::SeqCst);
//!         aomp::ctx::barrier();
//!         hits.fetch_add(1, Ordering::SeqCst);
//!     });
//!     assert_eq!(hits.load(Ordering::SeqCst), 4);
//! });
//! report.assert_ok();
//! assert!(report.distinct_schedules() > 1);
//! ```
//!
//! A failing schedule panics (via [`Report::assert_ok`]) with the seed,
//! the strategy, and the full decision trace; [`replay`] re-runs exactly
//! that interleaving under a debugger or with extra logging.

#![warn(missing_docs)]

mod controller;
pub mod oracle;
pub mod rng;
pub mod strategy;
pub mod trace;
pub mod vclock;

pub use trace::{Decision, Trace};
pub use vclock::{RaceAccess, RaceReport};

use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use controller::CONTROLLER;
use strategy::{Chooser, PctChooser, PrefixChooser, RandomChooser};

/// Identity of one explored schedule: enough to reproduce it exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleId {
    /// Seeded-random strategy; the seed fully determines the schedule.
    Random {
        /// The schedule's seed.
        seed: u64,
    },
    /// PCT strategy; seed plus priority-change depth determine it.
    Pct {
        /// The schedule's seed.
        seed: u64,
        /// Number of priority-change points.
        depth: usize,
    },
    /// Bounded-exhaustive DFS; the decision prefix determines it (choices
    /// past the prefix take the first eligible member).
    Dfs {
        /// Decision prefix (indices into each step's eligible set).
        prefix: Vec<usize>,
    },
    /// Exact replay of a previously recorded trace.
    Replay,
}

impl fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleId::Random { seed } => write!(f, "random schedule, seed {seed:#018x}"),
            ScheduleId::Pct { seed, depth } => {
                write!(f, "PCT schedule, seed {seed:#018x}, depth {depth}")
            }
            ScheduleId::Dfs { prefix } => write!(f, "DFS schedule, prefix {prefix:?}"),
            ScheduleId::Replay => write!(f, "trace replay"),
        }
    }
}

/// Outcome of one explored schedule.
#[derive(Debug)]
pub struct RunReport {
    /// How to reproduce this schedule.
    pub id: ScheduleId,
    /// The decision sequence the controller recorded.
    pub trace: Trace,
    /// Number of hook events observed (a proxy for schedule length even
    /// when no decision point had more than one eligible member).
    pub events: usize,
    /// Why the schedule failed: the program's panic message, a controller
    /// verdict (deadlock, budget), a data race, or an invariant-oracle
    /// violation. `None` for a clean schedule.
    pub failure: Option<String>,
    /// The first conflicting access pair the race oracle found on this
    /// schedule (only when the exploration enabled race checking). Also
    /// folded into [`failure`](Self::failure) unless the schedule already
    /// failed harder (panic/verdict).
    pub race: Option<RaceReport>,
}

/// Aggregate result of one exploration.
#[derive(Debug)]
pub struct Report {
    /// Every explored schedule, in exploration order.
    pub runs: Vec<RunReport>,
    /// True when a schedule cap stopped a DFS before the frontier was
    /// exhausted (coverage is a sample, not a proof).
    pub truncated: bool,
}

impl Report {
    /// Number of schedules explored.
    pub fn schedules(&self) -> usize {
        self.runs.len()
    }

    /// Number of *distinct* interleavings explored, by trace digest.
    /// Schedules whose decision sequences collide (e.g. two seeds that
    /// made identical choices) count once.
    pub fn distinct_schedules(&self) -> usize {
        self.digests().len()
    }

    /// The set of trace digests explored.
    pub fn digests(&self) -> HashSet<u64> {
        self.runs.iter().map(|r| r.trace.digest()).collect()
    }

    /// The failing schedules, in exploration order.
    pub fn failures(&self) -> impl Iterator<Item = &RunReport> {
        self.runs.iter().filter(|r| r.failure.is_some())
    }

    /// Panic with a reproduction recipe (schedule id + failure + full
    /// trace) if any schedule failed. The printed seed replays locally:
    /// `replay_random(seed, f)` / `replay(trace, f)`.
    pub fn assert_ok(&self) {
        let n = self.failures().count();
        if n == 0 {
            return;
        }
        let first = self.failures().next().expect("n > 0");
        panic!(
            "aomp-check: {n} of {} schedules failed\nfirst failure: {}\n{}\n{}",
            self.schedules(),
            first.id,
            first.failure.as_deref().unwrap_or(""),
            first.trace,
        );
    }
}

/// Schedule-count knob for CI: `AOMP_CHECK_SEEDS` overrides `default`
/// (the CI `schedule-check` job sets it; locally the default applies, and
/// re-exporting the env var reproduces CI's coverage with one variable).
pub fn seeds_from_env(default: usize) -> usize {
    std::env::var("AOMP_CHECK_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Environment variable turning the race oracle on for explorations that
/// did not choose explicitly (`AOMP_CHECK_RACES=1`; any non-empty value
/// other than `0` counts). Suites that call
/// [`Explorer::races`] are unaffected.
pub const RACES_ENV: &str = "AOMP_CHECK_RACES";

/// The env-driven default for race checking (see [`RACES_ENV`]).
pub fn races_from_env() -> bool {
    std::env::var(RACES_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One exploration at a time: the hook registry is process-global, so
/// concurrent explorations (e.g. `cargo test` running checked tests on
/// several harness threads) must serialise.
static SESSION: Mutex<()> = Mutex::new(());

/// While exploring, intentional failures (a differential-oracle assert, a
/// deadlock verdict unwinding a member) are *expected* on many schedules;
/// the default panic hook would spray backtraces for each. Silence it for
/// the session and restore on drop.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Self { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            let _ = std::panic::take_hook();
            std::panic::set_hook(prev);
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one schedule of `f` under `chooser`. Must be called with the
/// session lock held.
///
/// The schedule runs with `rt` entered: regions and tasks `f` creates are
/// pinned to the exploration's private [`aomp::Runtime`], so schedule
/// exploration never mutates the process-default runtime's hot-team
/// cache, executor, or counters (and vice versa).
fn run_schedule(
    id: ScheduleId,
    chooser: Box<dyn Chooser>,
    rt: &aomp::Runtime,
    races: bool,
    f: &dyn Fn(),
) -> RunReport {
    CONTROLLER.install(chooser, races);
    aomp::hook::register(&CONTROLLER);
    if races {
        aomp::check::arm(&CONTROLLER);
    }
    let caught = {
        let _in_rt = rt.enter();
        catch_unwind(AssertUnwindSafe(f))
    };
    if races {
        aomp::check::disarm();
    }
    aomp::hook::unregister();
    let (decisions, log, verdict, race) = CONTROLLER.harvest();
    let trace = Trace { decisions };
    let failure = match caught {
        Err(p) => Some(format!("panicked: {}", panic_message(p.as_ref()))),
        Ok(()) => verdict
            .map(|v| format!("verdict: {v}"))
            .or_else(|| race.as_ref().map(|r| r.to_string()))
            .or_else(|| oracle::check_invariants(&log).err()),
    };
    RunReport {
        id,
        trace,
        events: log.len(),
        failure,
        race,
    }
}

fn lock_session() -> std::sync::MutexGuard<'static, ()> {
    SESSION.lock().unwrap_or_else(|e| e.into_inner())
}

/// One private runtime per exploration: hot teams are still reused across
/// the exploration's schedules, but dropped (workers joined) when the
/// exploration ends, and nothing leaks into the process default runtime.
fn session_runtime() -> aomp::Runtime {
    aomp::Runtime::builder().build()
}

/// An exploration configuration: strategy-independent options applied to
/// every schedule of one exploration session.
///
/// The only option today is the **race oracle** ([`races`](Self::races)):
/// when on, the controller also builds a happens-before relation from the
/// event stream ([`vclock`]) and judges every tracked shared-memory
/// access ([`aomp::cell::SyncSlice::tracked`], [`aomp::check::Tracked`])
/// against it; the first conflicting pair fails the schedule like any
/// other oracle, with both access sites named in the failure and the same
/// replayable trace.
///
/// The free functions ([`explore_random`] & co.) are thin wrappers over
/// `Explorer::new()`, whose race default comes from [`RACES_ENV`] —
/// exporting `AOMP_CHECK_RACES=1` turns the oracle on across every
/// existing exploration without touching its call site.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    races: Option<bool>,
}

impl Explorer {
    /// Explorer with defaults: race checking per [`RACES_ENV`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicitly enable/disable the race oracle, overriding the env
    /// default.
    pub fn races(mut self, on: bool) -> Self {
        self.races = Some(on);
        self
    }

    fn races_on(&self) -> bool {
        self.races.unwrap_or_else(races_from_env)
    }

    /// Explore `schedules` seeded-random interleavings of `f`. Schedule
    /// `i` uses seed `mix64(base_seed) + i`-style derivation, so the
    /// whole exploration is a pure function of `base_seed` and any
    /// failure names the exact seed to replay.
    pub fn random(&self, schedules: usize, base_seed: u64, f: impl Fn()) -> Report {
        let races = self.races_on();
        let _s = lock_session();
        let _q = QuietPanics::install();
        let rt = session_runtime();
        let mut runs = Vec::with_capacity(schedules);
        for i in 0..schedules as u64 {
            let seed = rng::mix64(base_seed ^ rng::mix64(i));
            runs.push(run_schedule(
                ScheduleId::Random { seed },
                Box::new(RandomChooser::new(seed)),
                &rt,
                races,
                &f,
            ));
        }
        Report {
            runs,
            truncated: false,
        }
    }

    /// Replay the seeded-random schedule `seed` (as printed by a failing
    /// [`Report::assert_ok`]) exactly once.
    pub fn replay_random(&self, seed: u64, f: impl Fn()) -> RunReport {
        let races = self.races_on();
        let _s = lock_session();
        let _q = QuietPanics::install();
        let rt = session_runtime();
        run_schedule(
            ScheduleId::Random { seed },
            Box::new(RandomChooser::new(seed)),
            &rt,
            races,
            &f,
        )
    }

    /// Replay a recorded trace exactly. With a deterministic program this
    /// reproduces the original execution decision-for-decision (the
    /// returned report's digest equals the input trace's digest).
    pub fn replay(&self, trace: &Trace, f: impl Fn()) -> RunReport {
        let races = self.races_on();
        let _s = lock_session();
        let _q = QuietPanics::install();
        let rt = session_runtime();
        let prefix: Vec<usize> = trace.decisions.iter().map(|d| d.chosen_idx).collect();
        run_schedule(
            ScheduleId::Replay,
            Box::new(PrefixChooser::new(prefix)),
            &rt,
            races,
            &f,
        )
    }

    /// Bounded-exhaustive DFS: enumerate every interleaving of `f` whose
    /// divergence from first-runnable order happens within the first
    /// `depth_cap` decision points, up to `max_schedules` schedules (the
    /// report is marked [truncated](Report::truncated) if the cap hit
    /// first).
    ///
    /// With a `depth_cap` at least the program's decision count this is a
    /// complete enumeration of the serialised schedule space.
    pub fn dfs(&self, max_schedules: usize, depth_cap: usize, f: impl Fn()) -> Report {
        let races = self.races_on();
        let _s = lock_session();
        let _q = QuietPanics::install();
        let rt = session_runtime();
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
        let mut runs = Vec::new();
        let mut truncated = false;
        while let Some(prefix) = frontier.pop() {
            if runs.len() >= max_schedules {
                truncated = true;
                break;
            }
            let run = run_schedule(
                ScheduleId::Dfs {
                    prefix: prefix.clone(),
                },
                Box::new(PrefixChooser::new(prefix.clone())),
                &rt,
                races,
                &f,
            );
            // Branch on every decision point past the fixed prefix (those
            // at or before it were enumerated at shallower frontier
            // levels).
            for (i, d) in run.trace.decisions.iter().enumerate().skip(prefix.len()) {
                if i >= depth_cap {
                    break;
                }
                for alt in 1..d.eligible.len() {
                    let mut p: Vec<usize> = run.trace.decisions[..i]
                        .iter()
                        .map(|x| x.chosen_idx)
                        .collect();
                    p.push(alt);
                    frontier.push(p);
                }
            }
            runs.push(run);
        }
        Report { runs, truncated }
    }

    /// Explore `schedules` PCT interleavings of `f` with `depth` priority
    /// change points each. A probe schedule (seeded random) first
    /// estimates the schedule length that change points are sampled over.
    pub fn pct(&self, schedules: usize, base_seed: u64, depth: usize, f: impl Fn()) -> Report {
        let races = self.races_on();
        let _s = lock_session();
        let _q = QuietPanics::install();
        let rt = session_runtime();
        let probe_seed = rng::mix64(base_seed);
        let probe = run_schedule(
            ScheduleId::Random { seed: probe_seed },
            Box::new(RandomChooser::new(probe_seed)),
            &rt,
            races,
            &f,
        );
        let len_bound = (probe.trace.len() * 2).max(16);
        let mut runs = vec![probe];
        for i in 0..schedules as u64 {
            let seed = rng::mix64(base_seed ^ rng::mix64(i ^ 0x9C75_A1E5));
            runs.push(run_schedule(
                ScheduleId::Pct { seed, depth },
                Box::new(PctChooser::new(seed, depth, len_bound)),
                &rt,
                races,
                &f,
            ));
        }
        Report {
            runs,
            truncated: false,
        }
    }

    /// Differential oracle: explore `schedules` random interleavings of
    /// `parallel`, asserting each schedule's result equals `golden` (the
    /// sequential semantics — compute it with the `seq` version of the
    /// kernel). Bitwise/structural equality via `PartialEq`, per the
    /// paper's "equal results" claim.
    pub fn differential<T>(
        &self,
        schedules: usize,
        base_seed: u64,
        golden: T,
        parallel: impl Fn() -> T,
    ) -> Report
    where
        T: PartialEq + fmt::Debug,
    {
        self.random(schedules, base_seed, || {
            let got = parallel();
            assert!(
                got == golden,
                "differential oracle: parallel result {got:?} != sequential golden {golden:?}"
            );
        })
    }
}

/// Explore `schedules` seeded-random interleavings of `f` (see
/// [`Explorer::random`]; race checking per [`RACES_ENV`]).
pub fn explore_random(schedules: usize, base_seed: u64, f: impl Fn()) -> Report {
    Explorer::new().random(schedules, base_seed, f)
}

/// Replay the seeded-random schedule `seed` exactly once (see
/// [`Explorer::replay_random`]).
pub fn replay_random(seed: u64, f: impl Fn()) -> RunReport {
    Explorer::new().replay_random(seed, f)
}

/// Replay a recorded trace exactly (see [`Explorer::replay`]).
pub fn replay(trace: &Trace, f: impl Fn()) -> RunReport {
    Explorer::new().replay(trace, f)
}

/// Bounded-exhaustive DFS exploration (see [`Explorer::dfs`]).
pub fn explore_dfs(max_schedules: usize, depth_cap: usize, f: impl Fn()) -> Report {
    Explorer::new().dfs(max_schedules, depth_cap, f)
}

/// PCT exploration (see [`Explorer::pct`]).
pub fn explore_pct(schedules: usize, base_seed: u64, depth: usize, f: impl Fn()) -> Report {
    Explorer::new().pct(schedules, base_seed, depth, f)
}

/// Differential exploration against a sequential golden value (see
/// [`Explorer::differential`]).
pub fn explore_differential<T>(
    schedules: usize,
    base_seed: u64,
    golden: T,
    parallel: impl Fn() -> T,
) -> Report
where
    T: PartialEq + fmt::Debug,
{
    Explorer::new().differential(schedules, base_seed, golden, parallel)
}
