//! The deterministic executor: a [`SchedHook`] that serialises one team.
//!
//! # How control works
//!
//! While a schedule is armed, the first top-level region created on the
//! exploring thread binds to the controller. Every member of that team
//! reports its `MemberStart` and then parks until *all* members have
//! arrived — this removes thread-spawn timing from the schedule space.
//! From then on a single **token** circulates: exactly one member runs
//! between decision points. Each hook event is a yield point — the member
//! releases the token, the strategy picks the next runnable member, and
//! the chosen member continues. The resulting decision sequence is the
//! schedule's [`Trace`](crate::trace::Trace).
//!
//! # Blocked members and probes
//!
//! A member whose wake condition is unmet (barrier sense unchanged,
//! critical lock held, broadcast not published…) reports through
//! [`SchedHook::blocked`] instead of parking. The controller marks it
//! blocked *at the current epoch*; the epoch advances on every ordinary
//! event. A blocked member becomes eligible again only once the epoch has
//! moved past its blocking point, and when rescheduled it re-checks its
//! condition and either proceeds (emitting its next event) or re-blocks
//! at the new epoch. Each member therefore probes at most once per epoch:
//! the scheduler cannot livelock on a stuck condition, and a genuinely
//! stuck team is detected the moment every member is blocked at the
//! current epoch.
//!
//! # Deadlock verdicts
//!
//! When no member is eligible, the controller inspects the blocked sites.
//! If every site is *team-internal* (barrier, single/master broadcast,
//! ordered section) nothing outside the team can unblock it: the verdict
//! is an **instant deterministic deadlock** — no timeout involved. If an
//! *external-capable* site is present (critical locks can be held by
//! other teams; task joins wait on detached producer threads), the
//! controller lets members really park in short bounded slices
//! ("freepark") and only declares deadlock after a grace budget with no
//! progress.
//!
//! # Wall-clock interrupts
//!
//! Waits inside `blocked` are bounded (50 ms) and return control to the
//! runtime's own wait loop, which re-runs its poison/cancel check. An
//! asynchronous team cancel (e.g. the stall watchdog) therefore still
//! unwinds members the checker has parked. For fully deterministic
//! programs this path never fires under control — no event means no state
//! change, so the re-probe re-blocks without recording a decision.

use aomp::check::{AccessEvent, AccessSink};
use aomp::error::WaitSite;
use aomp::hook::{HookEvent, SchedHook, TeamId};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crate::strategy::Chooser;
use crate::trace::Decision;
use crate::vclock::{RaceReport, RaceTracker};

/// Bounded slice for controlled parks: long enough that the path is cold,
/// short enough that watchdog cancels and freepark probes stay live.
const BLOCKED_SLICE: Duration = Duration::from_millis(50);
/// Grace budget before an all-blocked state with external-capable sites
/// is declared a deadlock.
const EXTERNAL_DEADLOCK_BUDGET: Duration = Duration::from_secs(2);
/// Safety net for a wedged scheduler (a controller bug, not a program
/// bug): give up on determinism and let threads run natively.
const WEDGE_TIMEOUT: Duration = Duration::from_secs(10);
/// Hard ceiling on events per schedule — a runaway-loop backstop.
const MAX_EVENTS: usize = 200_000;

/// Scheduling state of one team member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Not yet entered the team context.
    Absent,
    /// Runnable, waiting for the token.
    Ready,
    /// Holds the token.
    Running,
    /// Wake condition unmet when last probed (at `epoch`).
    Blocked { epoch: u64, site: WaitSite },
    /// Left the team context.
    Done,
}

/// Per-schedule state, installed by the explorer before running the
/// schedule closure and harvested afterwards.
pub(crate) struct RunState {
    /// Monotonic schedule generation, so threads outliving a schedule
    /// notice it ended and fall back to native execution.
    gen: u64,
    /// The exploring thread: only regions it creates bind.
    master: ThreadId,
    /// The bound team, once a region started.
    team: Option<TeamId>,
    n: usize,
    arrived: usize,
    slots: Vec<Slot>,
    /// Which member currently holds the token.
    token: Option<usize>,
    /// Advances on every ordinary event; gates blocked-member probes.
    epoch: u64,
    /// All members blocked with an external-capable site: real bounded
    /// parks instead of token waits.
    freepark: bool,
    freepark_since: Option<Instant>,
    /// Verdict reached or controller gave up: run natively to completion.
    freerun: bool,
    chooser: Box<dyn Chooser>,
    decisions: Vec<Decision>,
    log: Vec<HookEvent>,
    verdict: Option<String>,
    /// Race detection, when the exploration enabled it: fed every logged
    /// event and (through [`AccessSink`]) every tracked access.
    tracker: Option<RaceTracker>,
}

impl RunState {
    fn managed(&self, team: TeamId, tid: usize) -> bool {
        self.team == Some(team) && tid < self.slots.len() && self.slots[tid] != Slot::Done
    }

    /// Record one event in the log and, when race checking is on, in the
    /// happens-before tracker (which sees the exact serialised order).
    fn record(&mut self, ev: &HookEvent) {
        self.log.push(*ev);
        if let Some(t) = self.tracker.as_mut() {
            t.on_event(ev);
        }
    }
}

struct CtrlState {
    gen: u64,
    run: Option<RunState>,
}

/// The process-global deterministic controller (registered as the
/// [`SchedHook`] for the duration of an exploration).
pub(crate) struct Controller {
    state: Mutex<CtrlState>,
    cv: Condvar,
}

/// The controller instance handed to `aomp::hook::register`.
pub(crate) static CONTROLLER: Controller = Controller {
    state: Mutex::new(CtrlState { gen: 0, run: None }),
    cv: Condvar::new(),
};

impl Controller {
    fn lock(&self) -> MutexGuard<'_, CtrlState> {
        // A verdict panic never happens while holding the guard, but be
        // robust against unwinds anywhere else.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a fresh schedule. The calling thread becomes the master.
    /// `races` arms the happens-before tracker for this schedule.
    pub(crate) fn install(&self, chooser: Box<dyn Chooser>, races: bool) {
        let mut g = self.lock();
        g.gen += 1;
        let gen = g.gen;
        g.run = Some(RunState {
            gen,
            master: std::thread::current().id(),
            team: None,
            n: 0,
            arrived: 0,
            slots: Vec::new(),
            token: None,
            epoch: 0,
            freepark: false,
            freepark_since: None,
            freerun: false,
            chooser,
            decisions: Vec::new(),
            log: Vec::new(),
            verdict: None,
            tracker: races.then(RaceTracker::new),
        });
    }

    /// Tear down the schedule and return what it recorded.
    pub(crate) fn harvest(
        &self,
    ) -> (
        Vec<Decision>,
        Vec<HookEvent>,
        Option<String>,
        Option<RaceReport>,
    ) {
        let mut g = self.lock();
        g.gen += 1;
        let run = g.run.take().expect("harvest without install");
        drop(g);
        self.cv.notify_all();
        let race = run.tracker.and_then(|t| t.race().cloned());
        (run.decisions, run.log, run.verdict, race)
    }

    /// Pick the next token holder. Called with no token assigned.
    fn dispatch(run: &mut RunState) {
        if run.token.is_some() || run.freerun || run.arrived < run.n || run.n == 0 {
            return;
        }
        let mut eligible: Vec<usize> = Vec::new();
        for (tid, s) in run.slots.iter().enumerate() {
            match *s {
                Slot::Ready => eligible.push(tid),
                Slot::Blocked { epoch, .. } if epoch < run.epoch => eligible.push(tid),
                _ => {}
            }
        }
        if eligible.is_empty() {
            let live: Vec<(usize, WaitSite)> = run
                .slots
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match *s {
                    Slot::Blocked { site, .. } => Some((t, site)),
                    _ => None,
                })
                .collect();
            if live.is_empty() {
                // All done (or still Running somewhere — nothing to do).
                return;
            }
            let external = live.iter().any(|&(_, s)| {
                matches!(
                    s,
                    WaitSite::Critical
                        | WaitSite::FutureGet
                        | WaitSite::TaskWait
                        | WaitSite::Replicated
                )
            });
            if external {
                // Something outside the team may still make progress:
                // let members really park, bounded, and re-probe.
                run.freepark = true;
                run.freepark_since.get_or_insert_with(Instant::now);
            } else {
                // Team-internal sites only: nothing can ever wake them.
                let desc: Vec<String> = live.iter().map(|(t, s)| format!("t{t}@{s}")).collect();
                run.verdict.get_or_insert(format!(
                    "deterministic deadlock: every member blocked at a team-internal \
                     site with no runnable member [{}]",
                    desc.join(", ")
                ));
                run.freerun = true;
            }
            return;
        }
        run.freepark = false;
        run.freepark_since = None;
        let idx = if eligible.len() == 1 {
            0
        } else {
            let step = run.decisions.len();
            let i = run.chooser.choose(&eligible, step);
            debug_assert!(i < eligible.len());
            i.min(eligible.len() - 1)
        };
        if eligible.len() > 1 {
            run.decisions.push(Decision {
                chosen_idx: idx,
                eligible: eligible.clone(),
            });
        }
        run.token = Some(eligible[idx]);
    }

    /// Park the calling member until it is granted the token (or the
    /// schedule ends / gives up).
    fn wait_turn(&self, mut g: MutexGuard<'_, CtrlState>, tid: usize, gen: u64) {
        let deadline = Instant::now() + WEDGE_TIMEOUT;
        loop {
            let Some(run) = g.run.as_mut() else { return };
            if run.gen != gen || run.freerun {
                return;
            }
            if run.token == Some(tid) {
                run.slots[tid] = Slot::Running;
                return;
            }
            let (ng, to) = self
                .cv
                .wait_timeout(g, BLOCKED_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
            if to.timed_out() && Instant::now() >= deadline {
                if let Some(run) = g.run.as_mut() {
                    if run.gen == gen && !run.freerun {
                        run.verdict.get_or_insert_with(|| {
                            "scheduler wedged: no progress for 10s (controller bug?)".into()
                        });
                        run.freerun = true;
                    }
                }
                drop(g);
                self.cv.notify_all();
                return;
            }
        }
    }
}

impl SchedHook for Controller {
    fn event(&self, ev: &HookEvent) {
        let me = std::thread::current().id();
        let mut g = self.lock();
        let Some(run) = g.run.as_mut() else { return };
        if run.freerun {
            return;
        }
        let gen = run.gen;

        // Region-scoped events: bind/unbind the team, never yield.
        match *ev {
            HookEvent::RegionStart { team, size, .. } => {
                if run.team.is_none() && me == run.master {
                    run.team = Some(team);
                    run.n = size;
                    run.arrived = 0;
                    run.slots = vec![Slot::Absent; size];
                    run.token = None;
                    run.freepark = false;
                    run.freepark_since = None;
                    run.record(ev);
                }
                return;
            }
            HookEvent::RegionEnd { team } => {
                if run.team == Some(team) {
                    run.record(ev);
                    run.team = None;
                    run.token = None;
                }
                return;
            }
            _ => {}
        }

        let team = ev.team();
        let Some(tid) = ev.tid() else { return };
        if run.team != Some(team) || tid >= run.slots.len() {
            return; // other teams (and nested regions) run natively
        }
        if run.slots[tid] == Slot::Done {
            // e.g. the master registering its region-join wait after its
            // own MemberEnd — outside the controlled window.
            return;
        }
        if run.slots[tid] == Slot::Absent && !matches!(ev, HookEvent::MemberStart { .. }) {
            return; // defensive: nothing precedes MemberStart for a member
        }
        if run.log.len() >= MAX_EVENTS {
            run.verdict
                .get_or_insert_with(|| format!("event budget exceeded ({MAX_EVENTS} events)"));
            run.freerun = true;
            drop(g);
            self.cv.notify_all();
            return;
        }

        match *ev {
            HookEvent::MemberStart { .. } => {
                if run.slots[tid] != Slot::Absent {
                    return;
                }
                run.record(ev);
                run.slots[tid] = Slot::Ready;
                run.arrived += 1;
                if run.arrived == run.n {
                    Self::dispatch(run);
                    self.cv.notify_all();
                }
                // Fall through: park until granted the token. Members
                // arriving early park here too — no scheduling happens
                // until the whole team has arrived.
            }
            HookEvent::MemberEnd { .. } => {
                run.record(ev);
                run.slots[tid] = Slot::Done;
                if run.token == Some(tid) {
                    run.token = None;
                }
                run.epoch += 1;
                Self::dispatch(run);
                drop(g);
                self.cv.notify_all();
                return; // the thread is leaving; it must not park
            }
            _ => {
                run.record(ev);
                run.epoch += 1;
                if run.token == Some(tid) {
                    run.token = None;
                }
                run.slots[tid] = Slot::Ready;
                run.freepark = false;
                run.freepark_since = None;
                Self::dispatch(run);
                self.cv.notify_all();
            }
        }
        self.wait_turn(g, tid, gen);
    }

    fn blocked(&self, team: TeamId, tid: usize, site: WaitSite) -> bool {
        if std::thread::panicking() {
            // Never interfere with an unwinding member.
            return false;
        }
        let mut g = self.lock();
        let Some(run) = g.run.as_mut() else {
            return false;
        };
        if run.freerun || !run.managed(team, tid) || run.arrived < run.n {
            return false;
        }
        let gen = run.gen;
        match run.slots[tid] {
            Slot::Running | Slot::Blocked { .. } => {
                // First block after running, or a failed re-probe: block
                // at the *current* epoch so this member is not offered
                // the token again until something else happens.
                run.slots[tid] = Slot::Blocked {
                    epoch: run.epoch,
                    site,
                };
                if run.token == Some(tid) {
                    run.token = None;
                }
                Self::dispatch(run);
                self.cv.notify_all();
            }
            _ => return false,
        }
        // Park until granted the token (probe), told to really park
        // (freepark / slice timeout), or a verdict ends the schedule.
        let deadline = Instant::now() + WEDGE_TIMEOUT;
        loop {
            let Some(run) = g.run.as_mut() else {
                return false;
            };
            if run.gen != gen {
                return false;
            }
            if run.freerun {
                let verdict = run.verdict.clone();
                drop(g);
                if let Some(v) = verdict {
                    // Unwind the member so the region fails with the
                    // verdict; sibling members follow via poisoning.
                    panic!("aomp-check: {v}");
                }
                return false;
            }
            if run.token == Some(tid) {
                run.slots[tid] = Slot::Running;
                return true; // caller re-checks its condition now
            }
            if run.freepark {
                let since = *run.freepark_since.get_or_insert_with(Instant::now);
                if since.elapsed() > EXTERNAL_DEADLOCK_BUDGET {
                    let v = format!(
                        "deadlock: every member blocked (including external-capable \
                         sites, last at {site}) with no progress for {}s",
                        EXTERNAL_DEADLOCK_BUDGET.as_secs()
                    );
                    run.verdict.get_or_insert(v.clone());
                    run.freerun = true;
                    drop(g);
                    self.cv.notify_all();
                    panic!("aomp-check: {v}");
                }
                // Decline the park: the runtime's own bounded wait runs,
                // re-checks poison/cancel and the condition, re-probes.
                return false;
            }
            let (ng, to) = self
                .cv
                .wait_timeout(g, BLOCKED_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
            if to.timed_out() {
                if Instant::now() >= deadline {
                    if let Some(run) = g.run.as_mut() {
                        if run.gen == gen && !run.freerun {
                            run.verdict.get_or_insert_with(|| {
                                "scheduler wedged: no progress for 10s (controller bug?)".into()
                            });
                            run.freerun = true;
                        }
                    }
                    drop(g);
                    self.cv.notify_all();
                    return false;
                }
                // Slice expired: hand control back so the runtime re-runs
                // its poison/cancel check (wall-clock cancels stay live),
                // then it will re-probe us.
                return false;
            }
        }
    }
}

impl AccessSink for Controller {
    fn access(&self, team: TeamId, tid: usize, ev: &AccessEvent) {
        let mut g = self.lock();
        let Some(run) = g.run.as_mut() else { return };
        // Accesses are *not* yield points and record no decision: they
        // only feed the race tracker, in the serialised order the token
        // protocol already imposes. Freerun means the serialisation
        // guarantee is gone, so judging further accesses would be
        // unsound; outside-team accesses (setup/teardown, other teams,
        // nested regions) are ignored like their events are.
        if run.freerun || !run.managed(team, tid) {
            return;
        }
        if let Some(t) = run.tracker.as_mut() {
            t.on_access(tid, ev);
        }
    }
}
