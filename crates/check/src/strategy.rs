//! Schedule-selection strategies.
//!
//! A [`Chooser`] is consulted at every decision point of one schedule.
//! The explorer builds a fresh chooser per schedule:
//!
//! * [`RandomChooser`] — uniform choice from a per-schedule seed. Cheap,
//!   surprisingly effective, and replayable (the seed *is* the schedule).
//! * [`PrefixChooser`] — follow a fixed decision prefix then always pick
//!   the first eligible member. This is both the DFS frontier executor
//!   (bounded-exhaustive enumeration) and the trace replayer.
//! * [`PctChooser`] — probabilistic concurrency testing: random static
//!   priorities with `d` random priority-change points. Finds bugs that
//!   need a rare ordering at a specific step with provable probability
//!   bounds (Burckhardt et al., ASPLOS '10).

use crate::rng::{mix64, SplitMix64};

/// Per-schedule decision source. `eligible` is the sorted list of
/// runnable member ids (always non-empty); `step` is the index of this
/// decision within the schedule. Returns an index into `eligible`.
pub trait Chooser: Send {
    /// Choose which eligible member runs next.
    fn choose(&mut self, eligible: &[usize], step: usize) -> usize;
}

/// Uniform random choice from a seed.
#[derive(Debug)]
pub struct RandomChooser {
    rng: SplitMix64,
}

impl RandomChooser {
    /// Chooser for one schedule of the random strategy.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, eligible: &[usize], _step: usize) -> usize {
        self.rng.below(eligible.len())
    }
}

/// Follow `prefix` (indices into the eligible set at each step), then
/// first-eligible. With an empty prefix this is the DFS root schedule;
/// with a full recorded trace it is exact replay.
#[derive(Debug)]
pub struct PrefixChooser {
    prefix: Vec<usize>,
}

impl PrefixChooser {
    /// Chooser following the given decision prefix.
    pub fn new(prefix: Vec<usize>) -> Self {
        Self { prefix }
    }
}

impl Chooser for PrefixChooser {
    fn choose(&mut self, eligible: &[usize], step: usize) -> usize {
        match self.prefix.get(step) {
            // Clamp defensively: with a deterministic program the width
            // at `step` equals the recorded width, so this is a no-op.
            Some(&idx) => idx.min(eligible.len() - 1),
            None => 0,
        }
    }
}

/// PCT-style chooser: every member gets a random priority derived from
/// the seed; the highest-priority eligible member always runs. At each of
/// `d` random change points the would-be winner is demoted below all
/// current priorities, forcing a context switch exactly there.
#[derive(Debug)]
pub struct PctChooser {
    seed: u64,
    /// Decision steps at which a demotion fires.
    change_steps: Vec<usize>,
    /// Demotions applied so far: (tid, demoted priority). Later demotions
    /// sink lower than earlier ones.
    demoted: Vec<(usize, u64)>,
}

impl PctChooser {
    /// Chooser for one PCT schedule: `depth` priority-change points
    /// sampled over an assumed schedule length of `len_bound` decisions.
    pub fn new(seed: u64, depth: usize, len_bound: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9C7_5A1E);
        let mut change_steps: Vec<usize> =
            (0..depth).map(|_| rng.below(len_bound.max(1))).collect();
        change_steps.sort_unstable();
        change_steps.dedup();
        Self {
            seed,
            change_steps,
            demoted: Vec::new(),
        }
    }

    fn priority(&self, tid: usize) -> u64 {
        // The most recent demotion of a tid wins.
        if let Some(&(_, p)) = self.demoted.iter().rev().find(|&&(t, _)| t == tid) {
            return p;
        }
        // Static priorities live in the upper half so every demotion
        // (counting down from a low base) sinks below all of them.
        (1 << 63) | mix64(self.seed ^ (tid as u64).wrapping_mul(0x100_0001))
    }

    fn winner(&self, eligible: &[usize]) -> usize {
        let mut best = 0;
        for i in 1..eligible.len() {
            if self.priority(eligible[i]) > self.priority(eligible[best]) {
                best = i;
            }
        }
        best
    }
}

impl Chooser for PctChooser {
    fn choose(&mut self, eligible: &[usize], step: usize) -> usize {
        let mut best = self.winner(eligible);
        if self.change_steps.binary_search(&step).is_ok() {
            // Demote the would-be winner below everything seen so far:
            // priorities count down from the middle of the range, below
            // all static priorities and all earlier demotions.
            let p = (u64::MAX >> 1) - self.demoted.len() as u64;
            self.demoted.push((eligible[best], p));
            best = self.winner(eligible);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_chooser_is_deterministic_per_seed() {
        let e = [0usize, 1, 2];
        let a: Vec<usize> = {
            let mut c = RandomChooser::new(9);
            (0..32).map(|s| c.choose(&e, s)).collect()
        };
        let b: Vec<usize> = {
            let mut c = RandomChooser::new(9);
            (0..32).map(|s| c.choose(&e, s)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_chooser_follows_then_first() {
        let mut c = PrefixChooser::new(vec![1, 0, 1]);
        let e = [0usize, 1];
        assert_eq!(c.choose(&e, 0), 1);
        assert_eq!(c.choose(&e, 1), 0);
        assert_eq!(c.choose(&e, 2), 1);
        assert_eq!(c.choose(&e, 3), 0); // past prefix: first eligible
    }

    #[test]
    fn pct_demotes_at_change_points() {
        let e = [0usize, 1];
        let mut c = PctChooser::new(3, 4, 8);
        // Whatever the priorities, choices must stay in range and be
        // reproducible from the seed.
        let a: Vec<usize> = (0..16).map(|s| c.choose(&e, s)).collect();
        let mut c2 = PctChooser::new(3, 4, 8);
        let b: Vec<usize> = (0..16).map(|s| c2.choose(&e, s)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 2));
    }
}
