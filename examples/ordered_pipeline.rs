//! `@Ordered` (paper Table 1): parallel work with sequentially-ordered
//! side effects — the classic "compress blocks in parallel, emit them in
//! order" pipeline.
//!
//! Blocks of a document are checksummed/"compressed" concurrently under a
//! dynamic schedule (uneven block costs), but each block's output is
//! appended under an ordered section, so the output stream is byte-wise
//! identical to a sequential run regardless of the team size.
//!
//! Run with `cargo run --example ordered_pipeline --release`.

use aomplib::prelude::*;
use parking_lot::Mutex;

const BLOCKS: usize = 64;
const BLOCK_LEN: usize = 4096;

/// A deliberately uneven per-block "compression": run-length encode and
/// fold a checksum a cost-dependent number of times.
fn compress_block(block: usize, data: &[u8]) -> Vec<u8> {
    let rounds = 1 + (block * 7) % 23; // skewed cost per block
    let mut out = Vec::with_capacity(8 + data.len() / 4);
    out.extend_from_slice(&(block as u32).to_le_bytes());
    let mut checksum = 0u32;
    for _ in 0..rounds {
        checksum = data
            .iter()
            .fold(checksum, |acc, &b| acc.rotate_left(5) ^ u32::from(b));
    }
    out.extend_from_slice(&checksum.to_le_bytes());
    // Simple RLE payload.
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

fn document() -> Vec<u8> {
    (0..BLOCKS * BLOCK_LEN)
        .map(|i| ((i / 97) % 7) as u8 * 31)
        .collect()
}

fn pipeline(threads: usize) -> Vec<u8> {
    let doc = document();
    let out = Mutex::new(Vec::new());
    let aspect = AspectModule::builder("OrderedPipeline")
        .bind(
            Pointcut::call("Pipeline.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Pipeline.blocks"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 1 }),
        )
        .build();
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call("Pipeline.run", || {
            aomp_weaver::call_for_scoped(
                "Pipeline.blocks",
                LoopRange::upto(0, BLOCKS as i64),
                |sub, scope| {
                    for b in sub.iter() {
                        let block = b as usize;
                        // Parallel part: compress out of order...
                        let compressed =
                            compress_block(block, &doc[block * BLOCK_LEN..(block + 1) * BLOCK_LEN]);
                        // ...ordered part: emit strictly in block order.
                        scope.ordered(b, || out.lock().extend_from_slice(&compressed));
                    }
                },
            );
        });
    });
    out.into_inner()
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let sequential = pipeline(1);
    let parallel = pipeline(threads);
    println!(
        "compressed {} blocks ({} KiB -> {} KiB) on {threads} threads",
        BLOCKS,
        BLOCKS * BLOCK_LEN / 1024,
        parallel.len() / 1024
    );
    assert_eq!(
        sequential, parallel,
        "ordered sections keep the stream byte-identical"
    );
    println!("parallel output is byte-identical to the sequential stream — @Ordered works");
}
