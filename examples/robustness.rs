//! Failure semantics tour: panic reporting, team cancellation and the
//! stall watchdog, through the public API only.
//!
//! Run with `cargo run --example robustness`.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn main() {
    // 1. A panic inside a team comes back as a value, not an abort.
    let r = region::try_parallel_with(RegionConfig::new().threads(4), || {
        if thread_id() == 2 {
            panic!("disk on fire");
        }
        barrier();
    });
    println!("1. panicking team   -> {r:?}");

    // 2. Team cancellation stops a dynamic loop early (OpenMP 4.0 cancel).
    let seen = AtomicUsize::new(0);
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    let r = region::try_parallel_with(RegionConfig::new().threads(4).cancellable(true), || {
        for_c.execute(LoopRange::upto(0, 1_000_000), |lo, hi, step| {
            let mut i = lo;
            while i < hi {
                if seen.fetch_add(1, Ordering::SeqCst) == 100 {
                    cancel_team();
                }
                i += step;
            }
        });
    });
    println!(
        "2. cancelled loop   -> {r:?} after {} of 1000000 iterations",
        seen.load(Ordering::SeqCst)
    );

    // 3. cancel_team() is gated: outside a region / on a non-cancellable
    //    team it is a no-op returning false.
    println!("3. cancel, no team  -> honoured: {}", cancel_team());
    region::parallel_with(RegionConfig::new().threads(2), || {
        if thread_id() == 0 {
            println!("   cancel, gated    -> honoured: {}", cancel_team());
        }
        barrier();
    });

    // 4. The stall watchdog converts a hung worker into a diagnosis.
    //    The body owns its captures (`'static`), so the detached executor
    //    may safely abandon the lost worker and release the caller.
    let t0 = Instant::now();
    let r = region::try_parallel_detached(
        RegionConfig::new()
            .threads(4)
            .stall_deadline(Duration::from_millis(250)),
        || {
            if thread_id() == 3 {
                std::thread::sleep(Duration::from_secs(3600)); // lost worker
            }
            barrier();
        },
    );
    match &r {
        Err(e @ RegionError::Stalled { .. }) => {
            println!("4. hung worker      -> {e} ({:?} elapsed)", t0.elapsed())
        }
        other => println!("4. hung worker      -> UNEXPECTED {other:?}"),
    }

    // 5. The runtime is immediately reusable after all of the above.
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(4), || {
        hits.fetch_add(1, Ordering::SeqCst);
        barrier();
    });
    println!(
        "5. healthy region   -> {}/4 threads ran",
        hits.load(Ordering::SeqCst)
    );

    // 6. Bounded task waits: a future that never resolves times out.
    let (_promise, fut) = task::future_pair::<u32>();
    println!(
        "6. future timeout   -> {:?}",
        fut.get_timeout(Duration::from_millis(50))
    );
    let fut = task::spawn_future(|| -> u32 { panic!("producer exploded") });
    println!("   future try_get   -> {:?}", fut.try_get());
}
