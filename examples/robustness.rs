//! Failure semantics tour: panic reporting, team cancellation, the
//! stall watchdog, and multi-tenant serving under overload — through the
//! public API only.
//!
//! Run with `cargo run --example robustness`. Every section *asserts*
//! that its injected failure was actually observed; the process exits
//! nonzero if any expected failure silently vanished, so CI can run this
//! example as a check rather than a demo.

use aomp_serve::{Backoff, Request, ServeError, Server, TenantSpec, Workload};
use aomplib::prelude::*;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let mut failures: Vec<String> = Vec::new();
    let mut expect = |observed: bool, label: &str| {
        if !observed {
            failures.push(label.to_owned());
        }
    };

    // 1. A panic inside a team comes back as a value, not an abort.
    let r = region::try_parallel_with(RegionConfig::new().threads(4), || {
        if thread_id() == 2 {
            panic!("disk on fire");
        }
        barrier();
    });
    println!("1. panicking team   -> {r:?}");
    expect(
        matches!(r, Err(RegionError::Panicked { .. })),
        "section 1: injected panic was not reported",
    );

    // 2. Team cancellation stops a dynamic loop early (OpenMP 4.0 cancel).
    let seen = AtomicUsize::new(0);
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    let r = region::try_parallel_with(RegionConfig::new().threads(4).cancellable(true), || {
        for_c.execute(LoopRange::upto(0, 1_000_000), |lo, hi, step| {
            let mut i = lo;
            while i < hi {
                if seen.fetch_add(1, Ordering::SeqCst) == 100 {
                    cancel_team();
                }
                i += step;
            }
        });
    });
    let iterations = seen.load(Ordering::SeqCst);
    println!("2. cancelled loop   -> {r:?} after {iterations} of 1000000 iterations");
    expect(
        matches!(r, Err(RegionError::Cancelled)) && iterations < 1_000_000,
        "section 2: cancellation did not stop the loop early",
    );

    // 3. cancel_team() is gated: outside a region / on a non-cancellable
    //    team it is a no-op returning false.
    let outside = cancel_team();
    println!("3. cancel, no team  -> honoured: {outside}");
    expect(!outside, "section 3: cancel outside a region was honoured");
    let gated = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(2), || {
        if thread_id() == 0 {
            gated.store(cancel_team() as usize + 1, Ordering::SeqCst);
        }
        barrier();
    });
    println!(
        "   cancel, gated    -> honoured: {}",
        gated.load(Ordering::SeqCst) == 2
    );
    expect(
        gated.load(Ordering::SeqCst) == 1,
        "section 3: cancel on a non-cancellable team was honoured",
    );

    // 4. The stall watchdog converts a hung worker into a diagnosis.
    //    The body owns its captures (`'static`), so the detached executor
    //    may safely abandon the lost worker and release the caller.
    let t0 = Instant::now();
    let r = region::try_parallel_detached(
        RegionConfig::new()
            .threads(4)
            .stall_deadline(Duration::from_millis(250)),
        || {
            if thread_id() == 3 {
                std::thread::sleep(Duration::from_secs(3600)); // lost worker
            }
            barrier();
        },
    );
    match &r {
        Err(e @ RegionError::Stalled { .. }) => {
            println!("4. hung worker      -> {e} ({:?} elapsed)", t0.elapsed())
        }
        other => println!("4. hung worker      -> UNEXPECTED {other:?}"),
    }
    expect(
        matches!(r, Err(RegionError::Stalled { .. })),
        "section 4: the watchdog did not diagnose the hung worker",
    );

    // 5. The runtime is immediately reusable after all of the above.
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(4), || {
        hits.fetch_add(1, Ordering::SeqCst);
        barrier();
    });
    println!(
        "5. healthy region   -> {}/4 threads ran",
        hits.load(Ordering::SeqCst)
    );
    expect(
        hits.load(Ordering::SeqCst) == 4,
        "section 5: the runtime was not reusable after the failures",
    );

    // 6. Bounded task waits: a future that never resolves times out.
    let (_promise, fut) = task::future_pair::<u32>();
    let timed_out = fut.get_timeout(Duration::from_millis(50));
    println!("6. future timeout   -> {timed_out:?}");
    expect(
        timed_out.is_err(),
        "section 6: the bounded wait never timed out",
    );
    let fut = task::spawn_future(|| -> u32 { panic!("producer exploded") });
    let poisoned = fut.try_get();
    println!("   future try_get   -> {poisoned:?}");
    expect(
        poisoned.is_err(),
        "section 6: the producer panic was not reported",
    );

    // 7. Multi-tenant serving: a bounded tenant queue sheds a burst
    //    (reject-newest, with a retry-after hint) instead of queueing
    //    without bound, and a cooperative client lands its request by
    //    backing off and resubmitting.
    let server = Server::config()
        .graph(512, 6, 1)
        .tenant(
            TenantSpec::new("demo")
                .threads(2)
                .queue_capacity(2)
                .default_deadline(Duration::from_secs(30)),
        )
        .build();
    let slow = Workload::SumRange { n: 20_000_000 };
    let mut held = Vec::new();
    let mut sheds = 0;
    let mut hint = Duration::ZERO;
    for _ in 0..8 {
        match server.submit(0, Request::new(slow)) {
            Ok(h) => held.push(h),
            Err(ServeError::Shed { retry_after, .. }) => {
                sheds += 1;
                hint = retry_after;
            }
            Err(other) => println!("   UNEXPECTED submit error: {other}"),
        }
    }
    println!("7. overloaded tenant-> shed {sheds}/8 (retry after {hint:?})");
    expect(sheds > 0, "section 7: the bounded queue never shed");
    let quick = Request::new(Workload::SumRange { n: 1_000 });
    let retry = Backoff {
        base: Duration::from_millis(2),
        max_attempts: 500,
        ..Backoff::default()
    };
    let landed = aomp_serve::submit_with_retry(&server, 0, &quick, &retry)
        .map(|h| h.wait())
        .is_ok();
    println!("   backoff client   -> landed after retries: {landed}");
    expect(landed, "section 7: the retrying client never landed");
    for h in held {
        let _ = h.wait();
    }
    expect(
        server.drain(Duration::from_secs(60)),
        "section 7: the server failed to drain",
    );

    if failures.is_empty() {
        println!("all injected failures were observed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("MISSED FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
