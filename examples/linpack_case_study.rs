//! The paper's case study (§III-E): parallelising the Java Linpack
//! benchmark (JGF LUFact).
//!
//! The base program is the refactored Figure 6 code: `dgefa` with two new
//! methods (`interchange`, `dscal`) and the `reduceAllCols` *for method*.
//! The `ParallelLinpack` aspect of Figure 7 binds:
//!
//! * `@Parallel` to `Linpack.dgefa`,
//! * `@For` (static block) to `Linpack.reduceAllCols`,
//! * `@Master` to `interchange` and `dscal`,
//! * `@BarrierBefore` to `interchange`, and
//! * `@BarrierAfter` to `reduceAllCols`, `interchange` and `dscal` —
//!
//! the `PR, FOR (block), 4xBR, 2xMA` of Table 2. We factorise the same
//! system sequentially (aspect unplugged) and in parallel (deployed) and
//! verify both the pivots and the solution agree bitwise.
//!
//! Run with `cargo run --example linpack_case_study --release`.

use aomp_jgf::harness::timed;
use aomp_jgf::lufact;
use aomp_jgf::Size;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let data = lufact::generate(Size::A);
    println!("LUFact case study: n = {}, threads = {threads}", data.n);

    // Sequential base program (no aspects woven).
    let (seq, t_seq) = timed(|| lufact::seq::run(&data));
    println!(
        "sequential:       {:>8.1} ms  (valid: {})",
        t_seq.as_secs_f64() * 1e3,
        lufact::validate(&data, &seq)
    );

    // The unplugged AOmp base program — sequential semantics.
    let (unplugged, t_unplugged) = timed(|| lufact::aomp::run_base(&data));
    println!(
        "aomp (unplugged): {:>8.1} ms  (matches seq: {})",
        t_unplugged.as_secs_f64() * 1e3,
        unplugged.x == seq.x
    );

    // The ParallelLinpack aspect of paper Figure 7, deployed.
    let (aomp, t_aomp) = timed(|| lufact::aomp::run(&data, threads));
    println!(
        "aomp (woven):     {:>8.1} ms  (matches seq: {})",
        t_aomp.as_secs_f64() * 1e3,
        aomp.x == seq.x
    );

    // The hand-threaded JGF-MT baseline for comparison.
    let (mt, t_mt) = timed(|| lufact::mt::run(&data, threads));
    println!(
        "jgf-mt baseline:  {:>8.1} ms  (matches seq: {})",
        t_mt.as_secs_f64() * 1e3,
        mt.x == seq.x
    );

    assert!(lufact::validate(&data, &seq));
    assert_eq!(seq.ipvt, aomp.ipvt, "identical pivoting decisions");
    assert_eq!(seq.x, aomp.x, "bitwise identical solutions");
    assert_eq!(seq.x, unplugged.x);
    assert_eq!(seq.x, mt.x);

    let ratio = t_aomp.as_secs_f64() / t_mt.as_secs_f64();
    println!("\naomp / jgf-mt wall-time ratio: {ratio:.3} (paper: within 1% on real multicores)");
    println!("case study OK");
}
