//! Quickstart: the AOmpLib programming model in five minutes.
//!
//! Shows both programming styles from the paper:
//! * the **annotation style** — attribute macros on plain functions
//!   (`#[parallel]`, `#[for_loop]`, `#[critical]`, `#[master]`);
//! * the **pointcut style** — a pluggable aspect module deployed into the
//!   weaver at run time, leaving the base program untouched.
//!
//! Run with `cargo run --example quickstart --release`.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// Annotation style (paper Figure 8): constructs named in the code.
// ---------------------------------------------------------------------

static SUM: AtomicI64 = AtomicI64::new(0);
static GREETINGS: AtomicUsize = AtomicUsize::new(0);

/// A *for method*: the first three parameters are the loop bounds, so a
/// schedule can rewrite them per thread (paper §III-A).
#[for_loop(schedule = "staticBlock")]
fn sum_squares(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i * i;
        i += step;
    }
    SUM.fetch_add(local, Ordering::Relaxed);
}

#[master]
fn report_progress() {
    GREETINGS.fetch_add(1, Ordering::Relaxed);
    println!(
        "  [master thread {}] partial sum so far: {}",
        thread_id(),
        SUM.load(Ordering::Relaxed)
    );
}

#[parallel(threads = 4)]
fn annotated_region() {
    sum_squares(0, 10_000, 1);
    report_progress();
}

// ---------------------------------------------------------------------
// Pointcut style (paper Figures 4 and 7): the base program only exposes
// join points; the aspect module decides what runs in parallel.
// ---------------------------------------------------------------------

fn base_program(out: &AtomicI64, n: i64) {
    aomp_weaver::call("Quickstart.run", || {
        aomp_weaver::call_for(
            "Quickstart.accumulate",
            LoopRange::upto(0, n),
            |lo, hi, step| {
                let mut local = 0;
                let mut i = lo;
                while i < hi {
                    local += i;
                    i += step;
                }
                out.fetch_add(local, Ordering::Relaxed);
            },
        );
    });
}

fn main() {
    println!("== annotation style ==");
    annotated_region();
    let expected: i64 = (0..10_000).map(|i| i * i).sum();
    println!(
        "sum of squares: {} (expected {expected})",
        SUM.load(Ordering::Relaxed)
    );
    assert_eq!(SUM.load(Ordering::Relaxed), expected);
    assert_eq!(
        GREETINGS.load(Ordering::Relaxed),
        1,
        "only the master reported"
    );

    println!("\n== pointcut style ==");
    let aspect = AspectModule::builder("QuickstartAspect")
        .bind(
            Pointcut::call("Quickstart.run"),
            Mechanism::parallel().threads(4),
        )
        .bind(
            Pointcut::call("Quickstart.accumulate"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 64 }),
        )
        .build();

    // Deployed: the same base program runs on a team of 4.
    let out = AtomicI64::new(0);
    let handle = Weaver::global().deploy(aspect);
    base_program(&out, 100_000);
    println!("woven result:     {}", out.load(Ordering::Relaxed));
    assert_eq!(out.load(Ordering::Relaxed), (0..100_000).sum::<i64>());

    // Unplugged: sequential semantics, bit-identical result.
    Weaver::global().undeploy(handle);
    let out2 = AtomicI64::new(0);
    base_program(&out2, 100_000);
    println!("unplugged result: {}", out2.load(Ordering::Relaxed));
    assert_eq!(out.load(Ordering::Relaxed), out2.load(Ordering::Relaxed));

    println!("\n== reductions and thread-local fields ==");
    let field = ThreadLocalField::new(0i64);
    region::parallel_with(RegionConfig::new().threads(4), || {
        // Each thread accumulates privately (no synchronisation)...
        for i in 0..1000 {
            field.update_or_init(|| 0, |v| *v += i);
        }
    });
    // ...and @Reduce merges the copies into the global value.
    field.reduce(&SumReducer);
    println!(
        "reduced total: {} (4 threads × Σ0..1000)",
        field.get_global()
    );
    assert_eq!(field.get_global(), 4 * (0..1000).sum::<i64>());

    println!("\nquickstart OK");
}
