//! Writing application-specific aspects (paper §III-C "parallelism
//! specific code" and the Sparse benchmark's case-specific schedule).
//!
//! Three custom aspects are composed with one base program, none of which
//! required touching it:
//!
//! 1. a *tracing* aspect that counts join-point executions (a classic
//!    AOP development aspect);
//! 2. an application-specific *loop schedule* that assigns work by a
//!    cost model (heavier iterations get smaller slices);
//! 3. the standard parallel-region aspect from the library.
//!
//! Also demonstrates interface-style pointcuts: one glob pointcut binds
//! the schedule to every implementation of `Kernel.*` (the paper's
//! LAMMPS-style scenario of many `Particle` implementations).
//!
//! Run with `cargo run --example custom_aspect --release`.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Aspect 1: counts every intercepted execution (around advice that just
/// proceeds).
struct Tracing {
    calls: Arc<AtomicUsize>,
}

impl CustomAdvice for Tracing {
    fn around(&self, jp: &JoinPoint<'_>, proceed: &mut dyn FnMut()) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        println!("  [trace] thread {} enters {}", thread_id(), jp.name);
        proceed();
    }

    fn around_for(
        &self,
        jp: &JoinPoint<'_>,
        range: LoopRange,
        proceed: &mut dyn FnMut(i64, i64, i64),
    ) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        println!(
            "  [trace] thread {} enters {} over {range}",
            thread_id(),
            jp.name
        );
        proceed(range.start, range.end, range.step);
    }
}

/// Aspect 2: a cost-model schedule. Iteration i costs ~i units (a
/// triangular loop), so thread shares are chosen such that every thread
/// gets an equal *cost*, not an equal iteration count — the kind of
/// application knowledge OpenMP pragmas cannot express modularly.
struct TriangularSchedule;

impl CustomAdvice for TriangularSchedule {
    fn around_for(
        &self,
        _jp: &JoinPoint<'_>,
        range: LoopRange,
        proceed: &mut dyn FnMut(i64, i64, i64),
    ) {
        let t = team_size() as f64;
        let tid = thread_id() as f64;
        let n = (range.end - range.start) as f64;
        // Equal-cost boundaries of a triangular cost function: cumulative
        // cost up to x is x², so cut at n·sqrt(k/t).
        let lo = range.start + (n * (tid / t).sqrt()) as i64;
        let hi = range.start + (n * ((tid + 1.0) / t).sqrt()) as i64;
        let hi = hi.min(range.end);
        if lo < hi {
            proceed(lo, hi, range.step);
        }
    }
}

/// Base program: two kernels behind the same interface-style name
/// prefix, plus a region method. No parallelism anywhere.
fn kernel_weighted_sum(out: &AtomicI64, n: i64) {
    aomp_weaver::call_for(
        "Kernel.weightedSum",
        LoopRange::upto(0, n),
        |lo, hi, step| {
            let mut acc = 0;
            let mut i = lo;
            while i < hi {
                // Iteration i does ~i units of work.
                let mut j = 0;
                while j < i {
                    acc += 1;
                    j += 1;
                }
                i += step;
            }
            out.fetch_add(acc, Ordering::Relaxed);
        },
    );
}

fn kernel_plain_sum(out: &AtomicI64, n: i64) {
    aomp_weaver::call_for("Kernel.plainSum", LoopRange::upto(0, n), |lo, hi, step| {
        let mut acc = 0;
        let mut i = lo;
        while i < hi {
            acc += i;
            i += step;
        }
        out.fetch_add(acc, Ordering::Relaxed);
    });
}

fn run_kernels(weighted: &AtomicI64, plain: &AtomicI64, n: i64) {
    aomp_weaver::call("Kernel.run", || {
        kernel_weighted_sum(weighted, n);
        kernel_plain_sum(plain, n);
    });
}

fn main() {
    let calls = Arc::new(AtomicUsize::new(0));
    let aspect = AspectModule::builder("CustomDemo")
        .bind(
            Pointcut::call("Kernel.run"),
            Mechanism::parallel().threads(3),
        )
        // One glob pointcut covers every Kernel.* for method — the
        // interface-style binding of paper §II.
        .bind(
            Pointcut::glob("Kernel.*Sum"),
            Mechanism::custom(TriangularSchedule),
        )
        .bind(
            Pointcut::glob("Kernel.*"),
            Mechanism::custom(Tracing {
                calls: Arc::clone(&calls),
            }),
        )
        .build();

    let n = 2_000i64;
    let weighted = AtomicI64::new(0);
    let plain = AtomicI64::new(0);
    Weaver::global().with_deployed(aspect, || run_kernels(&weighted, &plain, n));

    let expect_weighted: i64 = (0..n).sum(); // Σ i units of inner work
    let expect_plain: i64 = (0..n).sum();
    println!(
        "\nweighted kernel: {} (expected {})",
        weighted.load(Ordering::Relaxed),
        expect_weighted
    );
    println!(
        "plain kernel:    {} (expected {})",
        plain.load(Ordering::Relaxed),
        expect_plain
    );
    println!(
        "traced join-point executions: {}",
        calls.load(Ordering::Relaxed)
    );

    assert_eq!(weighted.load(Ordering::Relaxed), expect_weighted);
    assert_eq!(plain.load(Ordering::Relaxed), expect_plain);
    assert!(
        calls.load(Ordering::Relaxed) >= 3,
        "tracing aspect saw the executions"
    );

    // The same base program, unwoven: sequential, identical results.
    let w2 = AtomicI64::new(0);
    let p2 = AtomicI64::new(0);
    run_kernels(&w2, &p2, n);
    assert_eq!(w2.load(Ordering::Relaxed), expect_weighted);
    assert_eq!(p2.load(Ordering::Relaxed), expect_plain);
    println!("unplugged run matches — custom aspects OK");
}
