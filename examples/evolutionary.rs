//! The paper's §VII application case study, rebuilt: a JECoLi-style
//! metaheuristic framework whose parallelism is a single pluggable aspect
//! module. Three different algorithms (GA, differential evolution,
//! multi-start hill climbing) attack three problems; deploying
//! `parallel_evaluation_aspect` parallelises all of them at once through
//! an interface-style glob pointcut — and, because every algorithm is
//! counter-seeded, results are bit-identical with the aspect plugged or
//! unplugged.
//!
//! Run with `cargo run --example evolutionary --release`.

use aomplib::evolib::{
    de, ga, hill, parallel_evaluation_aspect, Problem, Rastrigin, Rosenbrock, Sphere,
};
use aomplib::prelude::*;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    println!("JECoLi-style case study — one aspect parallelises the whole framework ({threads} threads)\n");

    let sphere = Sphere { dims: 8 };
    let rastrigin = Rastrigin { dims: 6 };
    let rosenbrock = Rosenbrock { dims: 6 };

    // Sequential runs (no aspect deployed).
    let ga_seq = ga::run(&sphere, &ga::GaConfig::default());
    let de_seq = de::run(&rastrigin, &de::DeConfig::default());
    let hc_seq = hill::run(&rosenbrock, &hill::HillConfig::default());

    // The same runs with the framework aspect deployed.
    let (ga_par, de_par, hc_par) =
        Weaver::global().with_deployed(parallel_evaluation_aspect(threads), || {
            (
                ga::run(&sphere, &ga::GaConfig::default()),
                de::run(&rastrigin, &de::DeConfig::default()),
                hill::run(&rosenbrock, &hill::HillConfig::default()),
            )
        });

    let report = |name: &str, problem: &dyn Problem, seq_best: f64, par_best: f64, evals: usize| {
        println!(
            "{name:<22} on {:<10}: best {seq_best:>12.6}  ({evals} evaluations, parallel == sequential: {})",
            problem.name(),
            seq_best == par_best,
        );
    };
    report(
        "genetic algorithm",
        &sphere,
        ga_seq.best.fitness,
        ga_par.best.fitness,
        ga_seq.evaluations,
    );
    report(
        "differential evolution",
        &rastrigin,
        de_seq.best.fitness,
        de_par.best.fitness,
        de_seq.evaluations,
    );
    report(
        "hill climbing (multi)",
        &rosenbrock,
        hc_seq.best.fitness,
        hc_par.best.fitness,
        hc_seq.evaluations,
    );

    assert_eq!(ga_seq.best, ga_par.best);
    assert_eq!(de_seq.best, de_par.best);
    assert_eq!(hc_seq.best, hc_par.best);
    assert!(ga_seq.best.fitness < 1.0);
    println!("\nconvergence (GA on sphere, best per generation, every 10th):");
    for (g, f) in ga_seq.history.iter().enumerate().step_by(10) {
        println!("  gen {g:>3}: {f:>12.6}");
    }
    println!("\nevolutionary case study OK — the framework never mentioned threads");
}
