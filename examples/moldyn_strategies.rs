//! The paper's key programmability claim (§V, Figure 15): "multiple
//! parallelisation approaches can be experimented (and simultaneously
//! supported) without modifying the base program".
//!
//! One MolDyn base simulation runs under four different parallelisation
//! strategies, each selected by a different aspect/force policy:
//!
//! * the JGF-MT baseline with hand-managed thread-local force arrays,
//! * the AOmp `@ThreadLocalField` version (Table 2's `2xTLF`),
//! * a `@Critical`-section version,
//! * a lock-per-particle version.
//!
//! All four must produce the same physics (within floating-point
//! reduction-order noise).
//!
//! Run with `cargo run --example moldyn_strategies --release`.

use aomp_jgf::harness::timed;
use aomp_jgf::moldyn;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let mm = 6; // 864 particles, the smallest Figure 15 size
    let moves = 10;
    let data = moldyn::generate(mm, moves);
    println!(
        "MolDyn strategies: {} particles, {moves} moves, {threads} threads\n",
        moldyn::particles(mm)
    );

    let (seq, t) = timed(|| moldyn::seq::run(&data));
    println!(
        "{:<22} {:>8.1} ms   ekin {:.6}  epot {:.4}",
        "sequential",
        ms(t),
        seq.ekin,
        seq.epot
    );

    let (jgf, t) = timed(|| moldyn::mt::run(&data, threads));
    report("jgf-mt (threadlocal)", t, &jgf, &seq);

    let (tlf, t) = timed(|| moldyn::aomp::run(&data, threads));
    report("aomp @ThreadLocal", t, &tlf, &seq);

    let (crit, t) = timed(|| moldyn::variants::run_critical(&data, threads));
    report("aomp @Critical", t, &crit, &seq);

    let (locks, t) = timed(|| moldyn::variants::run_locks(&data, threads));
    report("aomp per-particle locks", t, &locks, &seq);

    println!("\nall strategies agree with the sequential run — the base program never changed");
}

fn ms(t: std::time::Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

fn report(
    name: &str,
    t: std::time::Duration,
    r: &moldyn::MolDynResult,
    seq: &moldyn::MolDynResult,
) {
    let ok = moldyn::agrees(r, seq, 1e-6);
    println!(
        "{name:<22} {:>8.1} ms   ekin {:.6}  epot {:.4}  (agrees: {ok})",
        ms(t),
        r.ekin,
        r.epot
    );
    assert!(ok, "{name} diverged from the sequential run");
}
