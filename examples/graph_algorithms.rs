//! The paper's §VII "current work" direction: irregular, graph-based
//! algorithms under the aspect model. BFS, PageRank and triangle
//! counting run from one sequential base program; aspects supply the
//! parallelisation, including a *case-specific* degree-balanced schedule
//! for the skew-heavy triangle kernel (the Table 2 "CS" idiom).
//!
//! Run with `cargo run --example graph_algorithms --release`.

use aomplib::irregular::{bfs, pagerank, triangles, CsrGraph, GraphKind};
use aomplib::jgf::harness::timed;
use aomplib::prelude::*;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let g = CsrGraph::generate(GraphKind::PowerLaw, 20_000, 8, 2026);
    println!(
        "graph: {} vertices, {} edges (power-law), {threads} threads\n",
        g.vertices(),
        g.edges()
    );

    // BFS.
    let seq_levels = bfs::reference(&g, 0);
    let (par_levels, t_bfs) =
        Weaver::global().with_deployed(bfs::aspect(threads), || timed(|| bfs::run(&g, 0)));
    let reached = par_levels.iter().filter(|&&l| l >= 0).count();
    println!(
        "BFS      {:>8.1} ms   reached {reached} vertices, max level {} (matches reference: {})",
        t_bfs.as_secs_f64() * 1e3,
        par_levels.iter().max().unwrap(),
        par_levels == seq_levels
    );
    assert_eq!(par_levels, seq_levels);

    // PageRank.
    let (seq_ranks, seq_iters) = pagerank::reference(&g, 1e-7, 100);
    let ((ranks, iters), t_pr) = Weaver::global().with_deployed(pagerank::aspect(threads), || {
        timed(|| pagerank::run(&g, 1e-7, 100))
    });
    println!(
        "PageRank {:>8.1} ms   converged in {iters} iterations (bitwise matches reference: {})",
        t_pr.as_secs_f64() * 1e3,
        ranks == seq_ranks && iters == seq_iters
    );
    assert_eq!(ranks, seq_ranks);

    // Triangle counting under every schedule.
    let oriented = triangles::orient(&g);
    let expected = triangles::count_oriented(&oriented);
    println!("\ntriangles = {expected}; per-schedule timings:");
    for sched in triangles::TriSchedule::ALL {
        let (got, t) = Weaver::global()
            .with_deployed(triangles::aspect(threads, sched, &oriented), || {
                timed(|| triangles::count_oriented(&oriented))
            });
        assert_eq!(got, expected, "{}", sched.name());
        println!("  {:<22} {:>8.1} ms", sched.name(), t.as_secs_f64() * 1e3);
    }
    println!("\ngraph algorithms OK — one base program, five interchangeable schedules");
}
